//! (Preemptive) Shortest Job First.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// SJF: at each instant, run the `m` alive jobs with the smallest *total*
/// size, one per machine. Clairvoyant; priorities are static per job, so
/// the selected set changes only at arrivals/completions. Scalable
/// (`(1+ε)`-speed `O(1)`-competitive) for ℓk-norms of flow time \[Bansal–
/// Pruhs 2010\], including on multiple machines.
#[derive(Debug, Default, Clone)]
pub struct Sjf {
    order: Vec<usize>, // scratch
}

impl Sjf {
    /// A fresh SJF allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateAllocator for Sjf {
    fn name(&self) -> &'static str {
        "SJF"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.order.clear();
        self.order.extend(0..alive.len());
        self.order.sort_by(|&a, &b| {
            alive[a]
                .size
                .partial_cmp(&alive[b].size)
                .unwrap()
                .then_with(|| alive[a].seq.cmp(&alive[b].seq))
        });
        for &i in self.order.iter().take(cfg.m) {
            rates[i] = cfg.speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn smallest_total_size_wins() {
        let a = alive(&[(0.0, 5.0, 4.9), (0.0, 2.0, 0.0)]);
        // SJF looks at size, not remaining: job 1 (size 2) runs even though
        // job 0 has less remaining.
        let r = rates_of(&mut Sjf::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn differs_from_srpt_on_nearly_done_large_job() {
        // The same instance under SRPT runs job 0 — covered in srpt tests;
        // here assert SJF's whole-schedule behavior. Jobs (0,4), (1,1):
        // at t=1 job1 (size 1 < 4) preempts; completes 2; job0 at 5.
        let t = Trace::from_pairs([(0.0, 4.0), (1.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Sjf::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[1] - 2.0).abs() < 1e-9);
        assert!((s.completion[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fills_machines_in_size_order() {
        let a = alive(&[
            (0.0, 4.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 2.0, 0.0),
            (0.0, 3.0, 0.0),
        ]);
        let r = rates_of(&mut Sjf::new(), 0.0, &a, &cfg(2, 2.0));
        assert_eq!(r, vec![0.0, 2.0, 2.0, 0.0]);
    }
}

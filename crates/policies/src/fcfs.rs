//! First Come First Served.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// FCFS: run the `m` earliest-arrived alive jobs, one per machine, to
/// completion. Non-clairvoyant and non-preemptive in arrival order. The
/// classic baseline whose total-flow behavior collapses under heavy-tailed
/// sizes (head-of-line blocking).
#[derive(Debug, Default, Clone, Copy)]
pub struct Fcfs;

impl Fcfs {
    /// A fresh FCFS allocator.
    pub fn new() -> Self {
        Fcfs
    }
}

impl RateAllocator for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        // `alive` is sorted by (arrival, seq) already.
        for r in rates.iter_mut().take(cfg.m.min(alive.len())) {
            *r = cfg.speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn first_m_arrivals_run() {
        let a = alive(&[(0.0, 1.0, 0.0), (1.0, 1.0, 0.0), (2.0, 1.0, 0.0)]);
        let r = rates_of(&mut Fcfs::new(), 2.0, &a, &cfg(2, 1.0));
        assert_eq!(r, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn head_of_line_blocking() {
        // A huge job blocks a tiny one.
        let t = Trace::from_pairs([(0.0, 100.0), (1.0, 0.1)]).unwrap();
        let s = simulate(
            &t,
            &mut Fcfs::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[0] - 100.0).abs() < 1e-9);
        assert!((s.completion[1] - 100.1).abs() < 1e-9);
    }
}

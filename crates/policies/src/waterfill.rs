//! Capped proportional allocation (max-min water-filling).

/// Distribute a total rate budget `total` over jobs with non-negative
/// weights `w`, proportionally to weight but capping each share at `cap`,
/// re-distributing capped excess among the rest (water-filling). Writes the
/// result into `out`.
///
/// Properties:
/// * `out[i] ≤ cap`, `Σ out[i] = min(total, n·cap)` when some weight is
///   positive (zero-weight jobs receive zero unless *all* weights are zero,
///   in which case the budget is split equally — the RR fallback).
/// * If no cap binds, `out[i] ∝ w[i]`.
pub fn water_fill(w: &[f64], total: f64, cap: f64, out: &mut [f64]) {
    debug_assert_eq!(w.len(), out.len());
    let n = w.len();
    if n == 0 || total <= 0.0 || cap <= 0.0 {
        out.fill(0.0);
        return;
    }
    let wsum: f64 = w.iter().sum();
    if wsum <= 0.0 {
        // All weights zero: fall back to equal split (capped).
        let share = (total / n as f64).min(cap);
        out.fill(share);
        return;
    }
    // Iterative water-filling: cap the heaviest, re-share the remainder.
    // Sort indices by weight descending; scan for the break point where
    // λ·w[i] ≤ cap for all uncapped i.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).unwrap());
    let mut budget = total.min(n as f64 * cap);
    let mut remaining_weight = wsum;
    let mut k = 0; // number of capped jobs so far
    for &i in &order {
        if remaining_weight <= 0.0 {
            out[i] = 0.0;
            continue;
        }
        let fair = budget * w[i] / remaining_weight;
        if fair >= cap {
            out[i] = cap;
            budget -= cap;
            remaining_weight -= w[i];
            k += 1;
        } else {
            // Once the heaviest uncapped job fits under the cap, all lighter
            // jobs do too: finish proportionally.
            out[i] = fair;
            // (keep iterating with the same λ = budget/remaining_weight)
            let lambda = budget / remaining_weight;
            for &j in order.iter().skip(k) {
                out[j] = lambda * w[j];
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn proportional_when_no_cap_binds() {
        let w = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        water_fill(&w, 1.2, 1.0, &mut out);
        assert!((out[0] - 0.2).abs() < 1e-12);
        assert!((out[1] - 0.4).abs() < 1e-12);
        assert!((out[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn caps_bind_and_excess_reflows() {
        // Weights 3:1, total 2, cap 1: heavy job capped at 1, light gets 1.
        let w = [3.0, 1.0];
        let mut out = [0.0; 2];
        water_fill(&w, 2.0, 1.0, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cascade_of_caps() {
        // Weights 4:2:1, total 2.5, cap 1.
        // λ·4 ≥ 1 → cap job0 at 1; budget 1.5 over weights 2:1 → 1.0, 0.5;
        // job1 hits cap exactly; job2 gets 0.5.
        let w = [4.0, 2.0, 1.0];
        let mut out = [0.0; 3];
        water_fill(&w, 2.5, 1.0, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - 1.0).abs() < 1e-12);
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((total(&out) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fall_back_to_equal_split() {
        let w = [0.0, 0.0];
        let mut out = [0.0; 2];
        water_fill(&w, 1.0, 1.0, &mut out);
        assert_eq!(out, [0.5, 0.5]);
    }

    #[test]
    fn budget_larger_than_capacity_saturates_all() {
        let w = [1.0, 5.0];
        let mut out = [0.0; 2];
        water_fill(&w, 100.0, 1.0, &mut out);
        assert_eq!(out, [1.0, 1.0]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut out: [f64; 0] = [];
        water_fill(&[], 1.0, 1.0, &mut out);
        let w = [1.0];
        let mut out = [9.9];
        water_fill(&w, 0.0, 1.0, &mut out);
        assert_eq!(out, [0.0]);
        let mut out = [9.9];
        water_fill(&w, 1.0, 0.0, &mut out);
        assert_eq!(out, [0.0]);
    }

    #[test]
    fn mixed_zero_and_positive_weights() {
        let w = [0.0, 1.0];
        let mut out = [0.0; 2];
        water_fill(&w, 1.0, 1.0, &mut out);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conserves_budget_generically() {
        let w = [0.3, 2.7, 1.1, 0.9, 5.0];
        let mut out = [0.0; 5];
        water_fill(&w, 3.0, 1.0, &mut out);
        assert!((total(&out) - 3.0).abs() < 1e-9);
        for &r in &out {
            assert!((0.0..=1.0 + 1e-12).contains(&r));
        }
        // Heavier jobs never get less.
        let mut idx: Vec<usize> = (0..5).collect();
        idx.sort_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap());
        for pair in idx.windows(2) {
            assert!(out[pair[0]] <= out[pair[1]] + 1e-12);
        }
    }
}

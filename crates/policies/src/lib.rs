#![deny(missing_docs)]

//! # tf-policies — scheduling policies as rate allocators
//!
//! Every policy discussed in *Temporal Fairness of Round Robin* (SPAA 2015)
//! or used as a baseline in its related work, implemented against the
//! [`tf_simcore::RateAllocator`] interface:
//!
//! | Policy | Clairvoyant? | Paper role |
//! |---|---|---|
//! | [`RoundRobin`] | no | the analyzed algorithm: `rate_j = s·min(1, m/n_t)` |
//! | [`Srpt`] | yes | optimal for ℓ1 on one machine; scalable for ℓk \[4, 27\] |
//! | [`Sjf`] | yes | scalable for ℓk \[4, 27\] (preemptive shortest job first) |
//! | [`Setf`] | no | scalable for ℓk on one machine \[4\] |
//! | [`Fcfs`] | no | classic non-preemptive-order baseline |
//! | [`Laps`] | no | latest-arrival processor sharing (RR generalization) |
//! | [`WeightedRoundRobin`] | no | RR with static weights (max-min water-filling) |
//! | [`AgedRoundRobin`] | no | machines ∝ job age — the \[12\] variant known scalable for ℓ2 |
//!
//! All policies respect the feasibility constraints of the paper's Section
//! 2: per-job rate at most one machine (`s`), total at most `m·s`.

mod agedrr;
mod fcfs;
mod hdf;
mod laps;
mod mlfq;
mod registry;
mod rr;
mod setf;
mod sjf;
mod srpt;
mod waterfill;

pub use agedrr::AgedRoundRobin;
pub use fcfs::Fcfs;
pub use hdf::Hdf;
pub use laps::Laps;
pub use mlfq::Mlfq;
pub use registry::Policy;
pub use rr::{RoundRobin, WeightedRoundRobin};
pub use setf::Setf;
pub use sjf::Sjf;
pub use srpt::Srpt;
pub use waterfill::water_fill;

#[cfg(test)]
pub(crate) mod testutil {
    use tf_simcore::{AliveJob, MachineConfig};

    /// Build alive-job views for tests: `(arrival, size, attained)` tuples.
    pub fn alive(specs: &[(f64, f64, f64)]) -> Vec<AliveJob> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, size, attained))| AliveJob {
                id: i as u32,
                arrival,
                size,
                weight: 1.0,
                remaining: size - attained,
                attained,
                seq: i as u32,
            })
            .collect()
    }

    pub fn cfg(m: usize, speed: f64) -> MachineConfig {
        MachineConfig::with_speed(m, speed)
    }

    /// Run an allocator once and return the rates.
    pub fn rates_of(
        p: &mut dyn tf_simcore::RateAllocator,
        now: f64,
        alive: &[AliveJob],
        cfg: &MachineConfig,
    ) -> Vec<f64> {
        let mut rates = vec![0.0; alive.len()];
        p.allocate(now, alive, cfg, &mut rates);
        tf_simcore::alloc::check_rates(alive, cfg, &rates, 1e-9).expect("feasible");
        rates
    }
}

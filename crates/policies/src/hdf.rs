//! Highest Density First.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// HDF: run the `m` alive jobs with the highest *density* `w_j / p_j`,
/// one per machine. The classical clairvoyant policy for *weighted* flow
/// time (the weighted analogue of SJF); with unit weights it coincides
/// with SJF. Serves as the baseline for the weighted experiments (E17),
/// mirroring how the paper's technique lineage \[1\] targets weighted
/// flow.
#[derive(Debug, Default, Clone)]
pub struct Hdf {
    order: Vec<usize>, // scratch
}

impl Hdf {
    /// A fresh HDF allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateAllocator for Hdf {
    fn name(&self) -> &'static str {
        "HDF"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.order.clear();
        self.order.extend(0..alive.len());
        self.order.sort_by(|&a, &b| {
            let da = alive[a].weight / alive[a].size;
            let db = alive[b].weight / alive[b].size;
            db.partial_cmp(&da)
                .unwrap()
                .then_with(|| alive[a].seq.cmp(&alive[b].seq))
        });
        for &i in self.order.iter().take(cfg.m) {
            rates[i] = cfg.speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};

    #[test]
    fn highest_density_runs() {
        let mut a = alive(&[(0.0, 4.0, 0.0), (0.0, 2.0, 0.0)]);
        a[0].weight = 8.0; // density 2.0
        a[1].weight = 1.0; // density 0.5
        let r = rates_of(&mut Hdf::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![1.0, 0.0]);
    }

    #[test]
    fn unit_weights_reduce_to_sjf_order() {
        let a = alive(&[(0.0, 4.0, 0.0), (0.0, 2.0, 0.0), (0.0, 3.0, 0.0)]);
        let r = rates_of(&mut Hdf::new(), 0.0, &a, &cfg(1, 1.0));
        // Density 1/p: smallest size = highest density.
        assert_eq!(r, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn fills_all_machines_by_density() {
        let mut a = alive(&[(0.0, 1.0, 0.0), (0.0, 1.0, 0.0), (0.0, 1.0, 0.0)]);
        a[0].weight = 1.0;
        a[1].weight = 3.0;
        a[2].weight = 2.0;
        let r = rates_of(&mut Hdf::new(), 0.0, &a, &cfg(2, 1.5));
        assert_eq!(r, vec![0.0, 1.5, 1.5]);
    }
}

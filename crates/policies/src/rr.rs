//! Round Robin — the algorithm the paper analyzes — and its statically
//! weighted generalization.

use crate::waterfill::water_fill;
use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// Round Robin on `m` identical machines of speed `s`.
///
/// "At any point in time when there are more jobs than machines, allocate
/// machines to jobs equally. Otherwise, process each job on one machine
/// exclusively." (paper, Section 1.1.) Equivalently:
/// `rate_j = s · min(1, m / n_t)` for every alive job `j`, where `n_t` is
/// the number of alive jobs.
///
/// RR is non-clairvoyant: it never inspects sizes or remaining work.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin;

impl RoundRobin {
    /// A fresh RR allocator.
    pub fn new() -> Self {
        RoundRobin
    }

    /// The RR share at speed `s` with `m` machines and `n` alive jobs.
    #[inline]
    pub fn share(cfg: &MachineConfig, n: usize) -> f64 {
        cfg.speed * (cfg.m as f64 / n as f64).min(1.0)
    }
}

impl RateAllocator for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        if alive.is_empty() {
            return;
        }
        rates.fill(Self::share(cfg, alive.len()));
    }
}

/// Weighted Round Robin: machine share proportional to each job's static
/// weight, capped at one machine per job, excess re-flowed (max-min
/// water-filling). With unit weights this is exactly [`RoundRobin`].
#[derive(Debug, Default, Clone)]
pub struct WeightedRoundRobin {
    weights: Vec<f64>, // scratch
}

impl WeightedRoundRobin {
    /// A fresh weighted-RR allocator (weights come from the jobs).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateAllocator for WeightedRoundRobin {
    fn name(&self) -> &'static str {
        "WRR"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.weights.clear();
        self.weights.extend(alive.iter().map(|a| a.weight));
        water_fill(&self.weights, cfg.total_cap(), cfg.job_cap(), rates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};

    #[test]
    fn rr_overloaded_equal_split() {
        let a = alive(&[(0.0, 1.0, 0.0); 4]);
        let r = rates_of(&mut RoundRobin::new(), 0.0, &a, &cfg(2, 1.0));
        assert_eq!(r, vec![0.5; 4]);
    }

    #[test]
    fn rr_underloaded_dedicated_machines() {
        let a = alive(&[(0.0, 1.0, 0.0); 2]);
        let r = rates_of(&mut RoundRobin::new(), 0.0, &a, &cfg(4, 2.0));
        assert_eq!(r, vec![2.0; 2]);
    }

    #[test]
    fn rr_share_formula() {
        let c = cfg(3, 2.0);
        assert_eq!(RoundRobin::share(&c, 2), 2.0); // underloaded: full machine
        assert_eq!(RoundRobin::share(&c, 3), 2.0); // exactly loaded
        assert_eq!(RoundRobin::share(&c, 6), 1.0); // overloaded: m/n = 1/2
    }

    #[test]
    fn rr_ignores_sizes() {
        let mixed = alive(&[(0.0, 100.0, 0.0), (0.0, 0.01, 0.0)]);
        let r = rates_of(&mut RoundRobin::new(), 0.0, &mixed, &cfg(1, 1.0));
        assert_eq!(r[0], r[1]);
    }

    #[test]
    fn wrr_with_unit_weights_matches_rr() {
        let a = alive(&[(0.0, 1.0, 0.0); 5]);
        let c = cfg(2, 1.5);
        let rr = rates_of(&mut RoundRobin::new(), 0.0, &a, &c);
        let wrr = rates_of(&mut WeightedRoundRobin::new(), 0.0, &a, &c);
        for (x, y) in rr.iter().zip(&wrr) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn wrr_respects_weights_and_caps() {
        let mut a = alive(&[(0.0, 1.0, 0.0), (0.0, 1.0, 0.0)]);
        a[0].weight = 3.0;
        a[1].weight = 1.0;
        // Budget 2, cap 1: heavy capped at 1, light absorbs the rest.
        let r = rates_of(&mut WeightedRoundRobin::new(), 0.0, &a, &cfg(2, 1.0));
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        // Budget 1 (one machine): proportional 3:1.
        let r = rates_of(&mut WeightedRoundRobin::new(), 0.0, &a, &cfg(1, 1.0));
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }
}

//! Shortest Elapsed Time First (least attained service).

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// SETF: strict priority to the jobs that have received the least service
/// so far. Non-clairvoyant. Scalable for ℓk-norms on one machine
/// \[Bansal–Pruhs 2010\]; on multiple machines only a fractional version is
/// known scalable \[Barcelo et al. 2012\] — this is that fractional
/// version:
///
/// * sort alive jobs by attained service into *groups* of equal attainment;
/// * serve groups in increasing order of attainment, giving each job in a
///   group an equal rate up to one machine, until capacity `m·s` runs out.
///
/// Jobs in a partially-served group gain service and eventually *catch up*
/// to the next group; that instant changes the allocation without any
/// arrival/completion, so the policy reports it via
/// [`RateAllocator::review_in`].
#[derive(Debug, Default, Clone)]
pub struct Setf {
    order: Vec<usize>, // scratch: indices sorted by attained
}

impl Setf {
    /// A fresh SETF allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tolerance under which two attained-service values count as equal
    /// (absorbs the rounding left by exact catch-up events).
    #[inline]
    fn tie_tol(a: f64, b: f64) -> f64 {
        1e-7 * (1.0 + a.abs().max(b.abs()))
    }

    /// Compute grouped rates; shared by `allocate` and `review_in`.
    fn compute(&mut self, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.order.clear();
        self.order.extend(0..alive.len());
        self.order.sort_by(|&a, &b| {
            alive[a]
                .attained
                .partial_cmp(&alive[b].attained)
                .unwrap()
                .then_with(|| alive[a].seq.cmp(&alive[b].seq))
        });
        let mut capacity = cfg.total_cap();
        let cap = cfg.job_cap();
        let mut g0 = 0;
        while g0 < self.order.len() {
            // Find the group [g0, g1) of equal attainment.
            let base = alive[self.order[g0]].attained;
            let mut g1 = g0 + 1;
            while g1 < self.order.len() {
                let nxt = alive[self.order[g1]].attained;
                if (nxt - base).abs() <= Self::tie_tol(base, nxt) {
                    g1 += 1;
                } else {
                    break;
                }
            }
            let g = (g1 - g0) as f64;
            let share = (capacity / g).min(cap);
            if share <= 0.0 {
                break;
            }
            for &i in &self.order[g0..g1] {
                rates[i] = share;
            }
            capacity -= share * g;
            g0 = g1;
        }
    }
}

impl RateAllocator for Setf {
    fn name(&self) -> &'static str {
        "SETF"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.compute(alive, cfg, rates);
    }

    fn review_in(&self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig) -> Option<f64> {
        // Recompute rates (cheap) and find the earliest catch-up between
        // adjacent attainment groups with differing rates.
        let mut me = self.clone();
        let mut rates = vec![0.0; alive.len()];
        me.compute(alive, cfg, &mut rates);
        let mut best: Option<f64> = None;
        for w in me.order.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let gap = alive[hi].attained - alive[lo].attained;
            if gap <= Self::tie_tol(alive[lo].attained, alive[hi].attained) {
                continue; // same group
            }
            let drift = rates[lo] - rates[hi];
            if drift > 1e-12 {
                let dt = gap / drift;
                best = Some(best.map_or(dt, |b: f64| b.min(dt)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn least_attained_gets_everything() {
        let a = alive(&[(0.0, 5.0, 2.0), (0.0, 5.0, 0.0)]);
        let r = rates_of(&mut Setf::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn equal_attainment_shares_equally() {
        let a = alive(&[(0.0, 5.0, 1.0), (0.0, 5.0, 1.0)]);
        let r = rates_of(&mut Setf::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.5, 0.5]);
    }

    #[test]
    fn groups_fill_machines_in_order() {
        // Group A: two jobs at 0 attained; group B: one at 1.0. m=3:
        // A-jobs get full machines (2·s), B gets the third.
        let a = alive(&[(0.0, 9.0, 0.0), (0.0, 9.0, 0.0), (0.0, 9.0, 1.0)]);
        let r = rates_of(&mut Setf::new(), 0.0, &a, &cfg(3, 1.0));
        assert_eq!(r, vec![1.0, 1.0, 1.0]);
        // m=2: A takes everything.
        let r = rates_of(&mut Setf::new(), 0.0, &a, &cfg(2, 1.0));
        assert_eq!(r, vec![1.0, 1.0, 0.0]);
        // m=1: A shares the single machine.
        let r = rates_of(&mut Setf::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn review_predicts_catchup() {
        // Job 0 at attained 0 is served at rate 1; job 1 at attained 2 is
        // idle: catch-up after 2 time units.
        let a = alive(&[(0.0, 9.0, 0.0), (0.0, 9.0, 2.0)]);
        let p = Setf::new();
        let rev = p.review_in(0.0, &a, &cfg(1, 1.0)).unwrap();
        assert!((rev - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_review_when_single_group() {
        let a = alive(&[(0.0, 9.0, 1.0), (0.0, 9.0, 1.0)]);
        let p = Setf::new();
        assert!(p.review_in(0.0, &a, &cfg(1, 1.0)).is_none());
    }

    #[test]
    fn end_to_end_catchup_schedule() {
        // Jobs (0, 2) and (1, 2) on one machine. SETF:
        // [0,1): job0 alone, attained 1. Job1 arrives with attained 0 →
        // served alone until catch-up at t=2 (both attained 1). Then they
        // share at 1/2 until job0 completes: each needs 1 more → both finish
        // at t=4.
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Setf::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[0] - 4.0).abs() < 1e-6, "{}", s.completion[0]);
        assert!((s.completion[1] - 4.0).abs() < 1e-6, "{}", s.completion[1]);
    }

    #[test]
    fn favors_short_jobs_without_clairvoyance() {
        // A long job that has run a while loses to fresh short arrivals.
        let t = Trace::from_pairs([(0.0, 10.0), (5.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Setf::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        // Job1 runs immediately on arrival and completes at 6 (flow 1).
        assert!((s.completion[1] - 6.0).abs() < 1e-6);
        assert!((s.completion[0] - 11.0).abs() < 1e-6);
    }
}

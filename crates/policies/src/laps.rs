//! Latest Arrival Processor Sharing.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// LAPS(β): share the machines equally among the `⌈β·n_t⌉` *latest-arrived*
/// alive jobs (0 < β ≤ 1). `β = 1` is exactly Round Robin. LAPS is the
/// classic scalable non-clairvoyant policy for total flow in the arbitrary
/// speed-up curve setting \[Edmonds–Pruhs 2009\]; here it serves as an
/// RR-family ablation: how much does biasing shares toward recent arrivals
/// change ℓk behavior?
///
/// Each selected job receives `min(s, m·s/⌈βn⌉)`; capacity beyond one
/// machine per selected job is left idle, per the policy's definition.
#[derive(Debug, Clone, Copy)]
pub struct Laps {
    /// Fraction of latest arrivals to serve, in `(0, 1]`.
    pub beta: f64,
}

impl Laps {
    /// LAPS with parameter `beta` (clamped into `(0, 1]`).
    pub fn new(beta: f64) -> Self {
        Laps {
            beta: beta.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

impl Default for Laps {
    fn default() -> Self {
        Laps::new(0.5)
    }
}

impl RateAllocator for Laps {
    fn name(&self) -> &'static str {
        "LAPS"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let n = alive.len();
        if n == 0 {
            return;
        }
        let k = ((self.beta * n as f64).ceil() as usize).clamp(1, n);
        let share = (cfg.total_cap() / k as f64).min(cfg.job_cap());
        // `alive` is sorted by (arrival, seq): the last k are the latest.
        for r in rates.iter_mut().skip(n - k) {
            *r = share;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use crate::RoundRobin;

    #[test]
    fn beta_one_is_round_robin() {
        let a = alive(&[(0.0, 1.0, 0.0), (1.0, 1.0, 0.0), (2.0, 1.0, 0.0)]);
        let c = cfg(1, 1.0);
        let l = rates_of(&mut Laps::new(1.0), 2.0, &a, &c);
        let r = rates_of(&mut RoundRobin::new(), 2.0, &a, &c);
        assert_eq!(l, r);
    }

    #[test]
    fn serves_latest_half() {
        let a = alive(&[
            (0.0, 1.0, 0.0),
            (1.0, 1.0, 0.0),
            (2.0, 1.0, 0.0),
            (3.0, 1.0, 0.0),
        ]);
        let r = rates_of(&mut Laps::new(0.5), 3.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 0.0, 0.5, 0.5]);
    }

    #[test]
    fn ceil_selects_at_least_one() {
        let a = alive(&[(0.0, 1.0, 0.0), (1.0, 1.0, 0.0), (2.0, 1.0, 0.0)]);
        let r = rates_of(&mut Laps::new(0.1), 2.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn per_job_cap_limits_small_sets() {
        // 4 machines, 3 jobs, β small → one selected job can use only one
        // machine; the rest idle by definition.
        let a = alive(&[(0.0, 1.0, 0.0), (1.0, 1.0, 0.0), (2.0, 1.0, 0.0)]);
        let r = rates_of(&mut Laps::new(0.1), 2.0, &a, &cfg(4, 2.0));
        assert_eq!(r, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn beta_is_clamped() {
        assert_eq!(Laps::new(7.0).beta, 1.0);
        assert!(Laps::new(-1.0).beta > 0.0);
    }
}

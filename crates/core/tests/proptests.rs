//! The crate's strongest executable claim: on arbitrary instances, the
//! paper's dual construction certifies Theorem 1, and weak duality holds
//! against independent feasible schedules.

use proptest::prelude::*;
use tf_core::{primal_cost, verify_theorem1, verify_theorem1_at_speed};
use tf_policies::{Sjf, Srpt};
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.0f64..20.0, 0.1f64..6.0), 1..20)
        .prop_map(|pairs| Trace::from_pairs(pairs).expect("valid jobs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 1's pipeline certifies every random instance at the
    /// prescribed speed η = 2k(1+10ε), for k ∈ {1,2,3}, m ∈ {1,2,4}.
    #[test]
    fn theorem1_certifies_random_instances(t in arb_trace(), m_idx in 0usize..3, k in 1u32..4) {
        let m = [1usize, 2, 4][m_idx];
        let c = verify_theorem1(&t, m, k, 0.05).unwrap();
        prop_assert!(c.certified(),
            "k={k} m={m}: lemma1={:?} lemma2={:?} gap={:?} feas={:?} l3={:?} l4={:?}",
            c.report.lemma1, c.report.lemma2, c.report.gap,
            c.report.feasibility, c.report.lemma3, c.report.lemma4);
    }

    /// Weak duality: the dual objective never exceeds the γ-scaled primal
    /// cost of independent feasible speed-1 schedules (SRPT and SJF).
    #[test]
    fn weak_duality_against_feasible_primals(t in arb_trace(), m_idx in 0usize..2, k in 1u32..4) {
        let m = [1usize, 2][m_idx];
        let eps = 0.05;
        let c = verify_theorem1(&t, m, k, eps).unwrap();
        // Only meaningful when the duals are feasible.
        prop_assert!(c.certified());
        let cfg = MachineConfig::new(m);
        for (name, sched) in [
            ("SRPT", simulate(&t, &mut Srpt::new(), cfg, SimOptions::with_profile()).unwrap()),
            ("SJF", simulate(&t, &mut Sjf::new(), cfg, SimOptions::with_profile()).unwrap()),
        ] {
            let cost = primal_cost(&t, sched.profile.as_ref().unwrap(), k, eps);
            prop_assert!(c.dual_objective <= cost * (1.0 + 1e-7) + 1e-9,
                "{name} k={k} m={m}: dual {} > primal {cost}", c.dual_objective);
        }
    }

    /// The implied end-to-end inequality of Theorem 1 holds numerically:
    /// RRᵏ at speed η is at most (2γ/(1.5ε))·(the primal cost of SRPT/γ),
    /// hence at most (4γ/(3ε))·SRPTᵏ — a fully measured chain.
    #[test]
    fn implied_ratio_holds_against_srpt(t in arb_trace(), k in 1u32..4) {
        let eps = 0.05;
        let m = 1usize;
        let c = verify_theorem1(&t, m, k, eps).unwrap();
        prop_assert!(c.certified());
        let s = simulate(&t, &mut Srpt::new(), MachineConfig::new(m), SimOptions::default()).unwrap();
        let opt_upper = s.flow_power_sum(f64::from(k)); // ≥ OPT^k
        let bound = 4.0 * c.gamma / (3.0 * eps) * opt_upper;
        prop_assert!(c.rr_power_sum <= bound * (1.0 + 1e-7) + 1e-9,
            "RR^k {} > (4γ/3ε)·SRPT^k {bound}", c.rr_power_sum);
    }

    /// More speed never hurts the certificate: if the pipeline certifies at
    /// some speed s ≥ η it also certifies at 2s (sanity of the probe API).
    #[test]
    fn certificates_are_speed_monotone_above_eta(t in arb_trace(), k in 1u32..3) {
        let eps = 0.05;
        let eta = tf_core::eta(k, eps);
        let at = verify_theorem1_at_speed(&t, 1, k, eps, eta).unwrap();
        let above = verify_theorem1_at_speed(&t, 1, k, eps, 2.0 * eta).unwrap();
        prop_assert!(at.certified());
        prop_assert!(above.certified());
        // Faster RR has a smaller objective.
        prop_assert!(above.rr_power_sum <= at.rr_power_sum * (1.0 + 1e-9));
    }
}

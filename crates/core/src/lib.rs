#![deny(missing_docs)]

//! # tf-core — the paper's dual-fitting analysis, executable
//!
//! This crate is the reproduction of the *primary contribution* of
//! *Temporal Fairness of Round Robin: Competitive Analysis for Lk-norms of
//! Flow Time* (SPAA 2015): the proof of
//!
//! > **Theorem 1.** Round Robin is `2k(1+10ε)`-speed `O(k/ε)`-competitive
//! > for the ℓk-norm of flow time, for any `0 < ε ≤ 1/10` and all `k ≥ 1`,
//! > on multiple identical machines.
//!
//! The proof is non-constructive only in that it quantifies over all
//! instances; for each *concrete* instance it prescribes explicit dual
//! variables for the LP relaxation of Section 3.1. We implement that
//! prescription and machine-check every inequality of Section 3:
//!
//! * [`duals`] builds `α_j` and the piecewise-constant `β(·)` from the
//!   exact RR execution profile, evaluating the paper's time integrals in
//!   closed form per profile segment (the integrands are derivatives of
//!   `(t−r)^k`, so no numerical quadrature is involved);
//! * [`checks`] verifies Lemma 1 (`Σα ≥ (1/2−ε)·RRᵏ`), Lemma 2
//!   (`m·∫β ≤ (1/2−2ε)·RRᵏ`), the resulting dual-objective gap
//!   (`Σα − m∫β ≥ (3/2)ε·RRᵏ`), and full dual feasibility
//!   (`α_j/p_j − β(t) ≤ γ((t−r_j)^k + p_j^k)/p_j` for every job at every
//!   critical `t`);
//! * [`primal`] evaluates the LP primal cost of any recorded schedule, so
//!   tests can confirm weak duality end-to-end against an independent
//!   feasible solution;
//! * [`certificate`] packages the whole pipeline as
//!   [`verify_theorem1`]: simulate RR at speed `η = 2k(1+10ε)`, construct
//!   duals, check everything, and report the implied competitive ratio
//!   with measured slack.
//!
//! ### A note on the sign of `α`
//!
//! The paper subtracts `εF_j^k` from `α_j`, which can make individual
//! `α_j` negative (e.g. the earliest job in a long overloaded stretch).
//! With the primal's job constraint in *equality* form
//! (`Σ_t x_jt = p_j` — optimal solutions never over-process, since costs
//! are positive), the corresponding dual variable is free, and weak
//! duality `Σα − m∫β ≤ cost(x)` holds for any equality-feasible `x`
//! without requiring `α ≥ 0`. The certificate records the most negative
//! `α_j` for transparency.

pub mod certificate;
pub mod checks;
pub mod duals;
pub mod primal;

pub use certificate::{
    min_certified_speed, verify_theorem1, verify_theorem1_at_speed, Certificate,
};
pub use checks::{lemma1_pairing_check, CheckReport, LemmaCheck, PointChecks};
pub use duals::{BetaFn, DualAssignment};
pub use primal::primal_cost;

/// The paper's scaling constant `γ = k(k/ε)^{k−1}` that multiplies the LP
/// objective.
pub fn gamma(k: u32, eps: f64) -> f64 {
    f64::from(k) * (f64::from(k) / eps).powi(k as i32 - 1)
}

/// The paper's speed requirement `η = 2k(1+10ε)`.
pub fn eta(k: u32, eps: f64) -> f64 {
    2.0 * f64::from(k) * (1.0 + 10.0 * eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        // k=2, ε=0.1: η = 4(1+1) = 8; γ = 2·(2/0.1)^1 = 40.
        assert!((eta(2, 0.1) - 8.0).abs() < 1e-12);
        assert!((gamma(2, 0.1) - 40.0).abs() < 1e-12);
        // k=1: γ = 1 regardless of ε (exponent 0).
        assert!((gamma(1, 0.05) - 1.0).abs() < 1e-12);
        assert!((eta(1, 0.05) - 3.0).abs() < 1e-12);
    }
}

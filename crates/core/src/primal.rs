//! Exact LP-primal cost of a recorded schedule — the weak-duality side.
//!
//! For any feasible schedule with rate profile `x_j(·)`, the (γ-scaled)
//! primal objective of Section 3.1 is
//!
//! ```text
//!   γ · Σ_j ∫ ((t−r_j)^k + p_j^k) / p_j · x_j(t) dt
//! ```
//!
//! On a piecewise-constant profile each integral is closed-form:
//! `∫_{t0}^{t1} (t−r)^k dt = ((t1−r)^{k+1} − (t0−r)^{k+1})/(k+1)`.
//!
//! Weak duality then states `Σα − m∫β ≤ γ·primal_cost` for every
//! equality-feasible primal solution — the cross-check the integration
//! tests run against an independent (e.g. SRPT) schedule.

use crate::gamma;
use tf_simcore::{Profile, Trace};

#[inline]
fn ipow(x: f64, k: i32) -> f64 {
    x.powi(k)
}

/// Evaluate the γ-scaled LP primal cost of `profile` on `trace` for
/// exponent `k` and parameter `eps` (which only enters through γ).
///
/// The profile must process each job fully (equality feasibility) for the
/// weak-duality comparison to be meaningful; the simulator guarantees
/// that.
pub fn primal_cost(trace: &Trace, profile: &Profile, k: u32, eps: f64) -> f64 {
    let g = gamma(k, eps);
    let mut total = 0.0;
    for seg in profile.segments() {
        for &(id, rate) in seg.rates {
            if rate <= 0.0 {
                continue;
            }
            let j = trace.job(id);
            let age_int = (ipow(seg.t1 - j.arrival, k as i32 + 1)
                - ipow(seg.t0 - j.arrival, k as i32 + 1))
                / f64::from(k + 1);
            let size_int = ipow(j.size, k as i32) * seg.duration();
            total += rate * (age_int + size_int) / j.size;
        }
    }
    g * total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_policies::{RoundRobin, Srpt};
    use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

    #[test]
    fn single_job_closed_form() {
        // Job (0, 2) at speed 1: x = 1 on [0, 2]. k=1, γ=1.
        // cost = ∫ (t + 2)/2 dt over [0,2] = (2 + 4)/2 = 3.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Srpt::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let c = primal_cost(&t, s.profile.as_ref().unwrap(), 1, 0.1);
        assert!((c - 3.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cost_bounded_by_twice_power_sum() {
        // The paper's Section 3.1 bound: primal cost of a feasible speed-1
        // schedule ≤ 2γ Σ F_j^k.
        let t = Trace::from_pairs([(0.0, 2.0), (0.5, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for k in [1u32, 2, 3] {
            for (m, mk) in [(1usize, 1), (2usize, 2)] {
                let _ = mk;
                let s = simulate(
                    &t,
                    &mut Srpt::new(),
                    MachineConfig::new(m),
                    SimOptions::with_profile(),
                )
                .unwrap();
                let eps = 0.1;
                let cost = primal_cost(&t, s.profile.as_ref().unwrap(), k, eps);
                let bound = 2.0 * gamma(k, eps) * s.flow_power_sum(f64::from(k));
                assert!(cost <= bound + 1e-9, "k={k} m={m}: {cost} > {bound}");
            }
        }
    }

    #[test]
    fn rr_and_srpt_costs_differ_but_both_finite() {
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 4.0), (1.0, 1.0)]).unwrap();
        let rr = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let sr = simulate(
            &t,
            &mut Srpt::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let c_rr = primal_cost(&t, rr.profile.as_ref().unwrap(), 2, 0.1);
        let c_sr = primal_cost(&t, sr.profile.as_ref().unwrap(), 2, 0.1);
        assert!(c_rr.is_finite() && c_sr.is_finite());
        // SRPT's indicator solution is cheaper here (it front-loads work).
        assert!(c_sr <= c_rr + 1e-9);
    }

    #[test]
    fn zero_rate_entries_cost_nothing() {
        // FCFS leaves waiting jobs at rate 0 in segments; they must not
        // contribute.
        use tf_policies::Fcfs;
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Fcfs::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let c = primal_cost(&t, s.profile.as_ref().unwrap(), 1, 0.1);
        // Job0 runs [0,1): ∫(t+1) dt = 1.5. Job1 runs [1,2): ∫(t+1)dt over
        // ages [1,2) = (2²−1²)/2 + 1 = 2.5. Total 4.
        assert!((c - 4.0).abs() < 1e-9, "{c}");
    }
}

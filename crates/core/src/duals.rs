//! Construction of the paper's dual variables from an RR execution profile
//! (Section 3.2).
//!
//! With `x_j(t') = k(t'−r_j)^{k−1}` (the derivative of the age power), the
//! paper sets, for δ = ε:
//!
//! ```text
//! α_j = ∫_{t'∈[r_j,C_j]∩T_o} ( Σ_{j'∈A(t',⪯r_j)} x_{j'}(t') ) / n_{t'} dt'
//!     + ∫_{t'∈[r_j,C_j]∩T_u} x_j(t') dt'
//!     − ε·F_j^k
//!
//! β(t) = (1/2 − 3ε)/m · Σ_{j'} 1[t ∈ [r_{j'}, C_{j'} + δ·F_{j'}]] · F_{j'}^{k−1}
//! ```
//!
//! where `T_o = {t : n_t ≥ m}` are the overloaded times, `A(t, ⪯r_j)` the
//! alive jobs arrived no later than `j`, and `F_j` RR's flow times.
//!
//! The engine's profile gives maximal segments with constant alive sets,
//! so each integral is an exact closed-form sum:
//! `∫_{t0}^{t1} x_j dt' = (t1−r_j)^k − (t0−r_j)^k`.

use tf_simcore::{Profile, Schedule, Trace};

/// The constructed dual solution for one RR run.
#[derive(Debug, Clone)]
pub struct DualAssignment {
    /// `α_j`, indexed by job id. May be negative (see crate docs).
    pub alpha: Vec<f64>,
    /// The piecewise-constant `β(·)`.
    pub beta: BetaFn,
    /// Exponent `k`.
    pub k: u32,
    /// The ε used (also δ).
    pub eps: f64,
    /// Machine count `m`.
    pub m: usize,
    /// RR's k-th power sum `Σ_j F_j^k` (the quantity all lemmas compare
    /// against).
    pub rr_power_sum: f64,
}

/// A piecewise-constant, right-continuous step function built from
/// weighted intervals — the dual price `β(t)`.
#[derive(Debug, Clone)]
pub struct BetaFn {
    /// Breakpoints in increasing order.
    breaks: Vec<f64>,
    /// `values[i]` = β on `[breaks[i], breaks[i+1])`; β = 0 before the
    /// first breakpoint and after the last.
    values: Vec<f64>,
    /// Exact integral `∫ β dt` accumulated in closed form.
    integral: f64,
}

impl BetaFn {
    /// Build from weighted intervals `(start, end, weight)`.
    pub fn from_intervals(intervals: &[(f64, f64, f64)]) -> Self {
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(2 * intervals.len());
        let mut integral = 0.0;
        for &(s, e, w) in intervals {
            if e > s && w != 0.0 {
                events.push((s, w));
                events.push((e, -w));
                integral += w * (e - s);
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut breaks = Vec::new();
        let mut values = Vec::new();
        let mut cur = 0.0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                cur += events[i].1;
                i += 1;
            }
            breaks.push(t);
            values.push(cur);
        }
        // Numerical hygiene: force the trailing value to exactly zero.
        if let Some(last) = values.last_mut() {
            if last.abs() < 1e-9 {
                *last = 0.0;
            }
        }
        BetaFn {
            breaks,
            values,
            integral,
        }
    }

    /// Evaluate `β(t)` (right-continuous).
    pub fn at(&self, t: f64) -> f64 {
        let i = self.breaks.partition_point(|&b| b <= t);
        if i == 0 {
            0.0
        } else {
            self.values[i - 1]
        }
    }

    /// Exact `∫ β dt`.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// All breakpoints (candidate minimizers for feasibility checks).
    pub fn breakpoints(&self) -> &[f64] {
        &self.breaks
    }
}

/// Integer power, exact for the small exponents the paper uses.
#[inline]
fn ipow(x: f64, k: u32) -> f64 {
    x.powi(k as i32)
}

/// Build the dual assignment for a Round Robin schedule.
///
/// `sched` must carry a recorded profile of an RR run on `trace`; `k ≥ 1`
/// and `0 < eps ≤ 1/10` mirror the paper's ranges (other values are
/// accepted — the certificate simply reports what holds).
///
/// # Panics
/// If the schedule has no profile or job counts mismatch.
pub fn build_duals(trace: &Trace, sched: &Schedule, k: u32, eps: f64) -> DualAssignment {
    assert!(k >= 1, "k must be at least 1");
    assert!(eps > 0.0, "eps must be positive");
    let profile: &Profile = sched
        .profile
        .as_ref()
        .expect("dual construction needs a recorded profile (SimOptions::with_profile)");
    let n = trace.len();
    assert_eq!(sched.flow.len(), n);
    let m = sched.cfg.m;

    let rr_power_sum: f64 = sched.flow.iter().map(|&f| ipow(f, k)).sum();

    // --- α ---------------------------------------------------------------
    let mut alpha = vec![0.0f64; n];
    let kf = f64::from(k);
    let _ = kf;
    for seg in profile.segments() {
        let nt = seg.rates.len();
        if nt == 0 {
            continue;
        }
        let overloaded = nt >= m;
        if overloaded {
            // Prefix sums of Δ_{j'} over the alive set in arrival order
            // (profile rates are sorted by job id = arrival order).
            let inv_n = 1.0 / nt as f64;
            let mut prefix = 0.0;
            for &(id, _) in seg.rates {
                let r = trace.job(id).arrival;
                let delta = ipow(seg.t1 - r, k) - ipow(seg.t0 - r, k);
                prefix += delta;
                alpha[id as usize] += prefix * inv_n;
            }
        } else {
            for &(id, _) in seg.rates {
                let r = trace.job(id).arrival;
                alpha[id as usize] += ipow(seg.t1 - r, k) - ipow(seg.t0 - r, k);
            }
        }
    }
    for (a, &f) in alpha.iter_mut().zip(&sched.flow) {
        *a -= eps * ipow(f, k);
    }

    // --- β ----------------------------------------------------------------
    let w_coeff = (0.5 - 3.0 * eps) / m as f64;
    let delta = eps;
    let intervals: Vec<(f64, f64, f64)> = trace
        .jobs()
        .iter()
        .map(|j| {
            let f = sched.flow[j.id as usize];
            let c = sched.completion[j.id as usize];
            (j.arrival, c + delta * f, w_coeff * ipow(f, k - 1))
        })
        .collect();
    let beta = BetaFn::from_intervals(&intervals);

    DualAssignment {
        alpha,
        beta,
        k,
        eps,
        m,
        rr_power_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_policies::RoundRobin;
    use tf_simcore::{simulate, MachineConfig, SimOptions};

    fn rr_schedule(pairs: &[(f64, f64)], m: usize, speed: f64) -> (Trace, Schedule) {
        let t = Trace::from_pairs(pairs.iter().copied()).unwrap();
        let s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::with_speed(m, speed),
            SimOptions::with_profile(),
        )
        .unwrap();
        (t, s)
    }

    #[test]
    fn beta_fn_step_semantics() {
        let b = BetaFn::from_intervals(&[(0.0, 2.0, 1.0), (1.0, 3.0, 0.5)]);
        assert_eq!(b.at(-1.0), 0.0);
        assert_eq!(b.at(0.0), 1.0);
        assert_eq!(b.at(0.999), 1.0);
        assert_eq!(b.at(1.0), 1.5);
        assert_eq!(b.at(2.0), 0.5);
        assert_eq!(b.at(3.0), 0.0);
        assert!((b.integral() - (2.0 + 1.0)).abs() < 1e-12);
        assert_eq!(b.breakpoints().len(), 4);
    }

    #[test]
    fn beta_fn_empty() {
        let b = BetaFn::from_intervals(&[]);
        assert_eq!(b.at(0.0), 0.0);
        assert_eq!(b.integral(), 0.0);
    }

    #[test]
    fn single_job_alpha_closed_form() {
        // One job (0, 2) on 1 machine at speed 4 (k=1, ε=0.1, η would be
        // 2.2 but any speed works for construction): C = 0.5, F = 0.5.
        // n_t = 1 ≥ m = 1 → overloaded; α'_0 = ∫_0^0.5 1 dt / 1 = 0.5
        // (k=1: x = 1). α_0 = 0.5 − 0.1·0.5 = 0.45.
        let (t, s) = rr_schedule(&[(0.0, 2.0)], 1, 4.0);
        let d = build_duals(&t, &s, 1, 0.1);
        assert!((d.alpha[0] - 0.45).abs() < 1e-9, "{}", d.alpha[0]);
        assert!((d.rr_power_sum - 0.5).abs() < 1e-9);
        // β: weight (0.5−0.3)/1 · F^0 = 0.2 on [0, 0.5 + 0.05].
        assert!((d.beta.at(0.1) - 0.2).abs() < 1e-12);
        assert!((d.beta.integral() - 0.2 * 0.55).abs() < 1e-9);
    }

    #[test]
    fn two_jobs_k2_alpha_values() {
        // Jobs (0,1), (0,1) on 1 machine speed 2: both complete at t=1
        // (share rate 1 each). k=2, ε=0.05.
        // Overloaded throughout (n=2 ≥ m=1). x_j(t) = 2t.
        // Δ over [0,1] for each job: 1² − 0² = 1.
        // Arrival order (ties by id): job0 then job1.
        // α'_0 = prefix(job0)/2 = 1/2; α'_1 = (1+1)/2 = 1.
        // F = 1 → subtract ε·1: α_0 = 0.45, α_1 = 0.95.
        let (t, s) = rr_schedule(&[(0.0, 1.0), (0.0, 1.0)], 1, 2.0);
        let d = build_duals(&t, &s, 2, 0.05);
        assert!((d.alpha[0] - 0.45).abs() < 1e-9, "{}", d.alpha[0]);
        assert!((d.alpha[1] - 0.95).abs() < 1e-9, "{}", d.alpha[1]);
        // Lemma 1 sanity at this scale: Σα = 1.4 ≥ (1/2−ε)·RR² = 0.45·2.
        assert!(d.alpha.iter().sum::<f64>() >= (0.5 - 0.05) * d.rr_power_sum);
    }

    #[test]
    fn underloaded_segments_use_own_term_only() {
        // Two jobs on 4 machines: n_t = 2 < 4 → underloaded, each gets a
        // dedicated machine. α'_j = F_j^k each (k=1: ∫1 = F).
        let (t, s) = rr_schedule(&[(0.0, 2.0), (0.0, 2.0)], 4, 1.0);
        let d = build_duals(&t, &s, 1, 0.1);
        // F = 2 for both; α = 2 − 0.1·2 = 1.8.
        assert!((d.alpha[0] - 1.8).abs() < 1e-9);
        assert!((d.alpha[1] - 1.8).abs() < 1e-9);
    }

    #[test]
    fn beta_mass_closed_form() {
        // m·∫β = (1/2−3ε)(1+ε)·Σ F_j^k  (Lemma 2's equality).
        let (t, s) = rr_schedule(&[(0.0, 1.0), (0.5, 2.0), (1.0, 1.0)], 2, 3.0);
        let eps = 0.08;
        for k in [1u32, 2, 3] {
            let d = build_duals(&t, &s, k, eps);
            let expect: f64 = s
                .flow
                .iter()
                .map(|&f| (0.5 - 3.0 * eps) * (1.0 + eps) * f.powi(k as i32))
                .sum();
            let got = d.m as f64 * d.beta.integral();
            assert!(
                (got - expect).abs() < 1e-9 * expect.max(1.0),
                "k={k}: {got} vs {expect}"
            );
        }
    }
}

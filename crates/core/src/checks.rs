//! Machine-checking the inequalities of Section 3 on concrete instances.

use crate::duals::DualAssignment;
use crate::gamma;
use serde::{Deserialize, Serialize};
use tf_simcore::{Schedule, Trace};

/// Relative tolerance for inequality checks (absorbs f64 rounding in the
/// closed-form integrals).
pub const CHECK_TOL: f64 = 1e-7;

/// One verified inequality: `lhs (cmp) rhs` with measured slack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LemmaCheck {
    /// Left-hand side as evaluated.
    pub lhs: f64,
    /// Right-hand side as evaluated.
    pub rhs: f64,
    /// Whether the inequality holds (up to [`CHECK_TOL`]).
    pub ok: bool,
    /// Relative slack `(rhs − lhs)/scale` signed so that positive = margin,
    /// negative = violation, where `scale = max(|lhs|, |rhs|, 1)`.
    pub slack: f64,
}

impl LemmaCheck {
    fn geq(lhs: f64, rhs: f64) -> Self {
        // Checking lhs ≥ rhs.
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        let slack = (lhs - rhs) / scale;
        LemmaCheck {
            lhs,
            rhs,
            ok: slack >= -CHECK_TOL,
            slack,
        }
    }

    fn leq(lhs: f64, rhs: f64) -> Self {
        // Checking lhs ≤ rhs.
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        let slack = (rhs - lhs) / scale;
        LemmaCheck {
            lhs,
            rhs,
            ok: slack >= -CHECK_TOL,
            slack,
        }
    }
}

/// Aggregate result of sampled point checks (feasibility, Lemmas 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointChecks {
    /// Number of `(job, time)` points evaluated.
    pub checked: usize,
    /// Points where the inequality failed beyond tolerance.
    pub violations: usize,
    /// Most negative relative slack observed (positive = all margins).
    pub worst_slack: f64,
}

impl PointChecks {
    fn new() -> Self {
        PointChecks {
            checked: 0,
            violations: 0,
            worst_slack: f64::INFINITY,
        }
    }

    fn record(&mut self, c: LemmaCheck) {
        self.checked += 1;
        if !c.ok {
            self.violations += 1;
        }
        self.worst_slack = self.worst_slack.min(c.slack);
    }

    /// True iff no violations were recorded (vacuously true when nothing
    /// was checked).
    pub fn ok(&self) -> bool {
        self.violations == 0
    }
}

/// The full verification report for one dual assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Lemma 1: `Σ_j α_j ≥ (1/2 − ε)·RRᵏ`.
    pub lemma1: LemmaCheck,
    /// Lemma 2: `m·∫β ≤ (1/2 − 2ε)·RRᵏ`.
    pub lemma2: LemmaCheck,
    /// Dual objective gap: `Σα − m∫β ≥ (3/2)·ε·RRᵏ`.
    pub gap: LemmaCheck,
    /// Dual feasibility `α_j ≤ γ(t−r_j)^k + γp_j^k + p_j·β(t)` at every
    /// critical `t` for every job (exhaustive over β breakpoints).
    pub feasibility: PointChecks,
    /// Lemma 3 on sampled `(j, t)` points:
    /// `∫_{T_o} Σ_{j'⪯j, j'∉B(t)} x_{j'}/n ≤ γ(t−r_j)^k`.
    pub lemma3: PointChecks,
    /// Lemma 4 on sampled `(j, t)` points:
    /// `∫_{T_o} Σ_{j'⪯j, j'∈B(t)} x_{j'}/n ≤ p_j·β(t)`.
    pub lemma4: PointChecks,
    /// Most negative `α_j` (0 if all non-negative) — see crate docs.
    pub min_alpha: f64,
}

impl CheckReport {
    /// All structural checks passed: the dual assignment certifies the
    /// competitiveness bound on this instance.
    pub fn certified(&self) -> bool {
        self.lemma1.ok && self.lemma2.ok && self.gap.ok && self.feasibility.ok()
    }
}

#[inline]
fn ipow(x: f64, k: u32) -> f64 {
    x.powi(k as i32)
}

/// The *pairing inequality* inside Lemma 1's proof, checked per overloaded
/// segment: with ranks `π_j = |A(t, ⪯r_j)|` and `x_j = ∫_seg k(t−r_j)^{k−1}`,
///
/// ```text
///   Σ_j x_j · (n_t + 1 − π_j) / n_t  ≥  (1/2) Σ_j x_j
/// ```
///
/// This is the step the paper proves by pairing ranks `π_i + π_j = n + 1`
/// and using that earlier-arriving jobs have larger `x` and smaller `π`
/// (so the crossed products dominate). Verifying it per segment pinpoints
/// *where* Lemma 1's factor 1/2 comes from on a concrete instance.
///
/// Returns aggregate results over all overloaded segments.
pub fn lemma1_pairing_check(trace: &Trace, sched: &Schedule, k: u32) -> PointChecks {
    let mut out = PointChecks::new();
    let Some(profile) = sched.profile.as_ref() else {
        return out;
    };
    let m = sched.cfg.m;
    for seg in profile.segments() {
        let n = seg.rates.len();
        if n < m || n == 0 {
            continue; // Lemma 1's pairing only covers overloaded times
        }
        // Profile rates are sorted by id = arrival order, so the rank of
        // the i-th entry is i+1.
        let nf = n as f64;
        let mut lhs = 0.0;
        let mut sum = 0.0;
        for (i, &(id, _)) in seg.rates.iter().enumerate() {
            let r = trace.job(id).arrival;
            let x = ipow(seg.t1 - r, k) - ipow(seg.t0 - r, k);
            let rank = (i + 1) as f64;
            lhs += x * (nf + 1.0 - rank) / nf;
            sum += x;
        }
        out.record(LemmaCheck::geq(lhs, 0.5 * sum));
    }
    out
}

/// Run every check of Section 3 against a built dual assignment.
///
/// `sample_jobs` bounds how many jobs get the expensive Lemma 3/4
/// decomposition (the feasibility check itself is exhaustive).
pub fn check_duals(
    trace: &Trace,
    sched: &Schedule,
    duals: &DualAssignment,
    sample_jobs: usize,
) -> CheckReport {
    let eps = duals.eps;
    let k = duals.k;
    let m = duals.m as f64;
    let rrk = duals.rr_power_sum;
    let g = gamma(k, eps);

    let alpha_sum: f64 = duals.alpha.iter().sum();
    let beta_mass = m * duals.beta.integral();

    let lemma1 = LemmaCheck::geq(alpha_sum, (0.5 - eps) * rrk);
    let lemma2 = LemmaCheck::leq(beta_mass, (0.5 - 2.0 * eps) * rrk);
    let gap = LemmaCheck::geq(alpha_sum - beta_mass, 1.5 * eps * rrk);

    // ---- dual feasibility, exhaustive over critical times ----------------
    // For fixed j the RHS γ(t−r_j)^k + γp^k + p_j β(t) is increasing in t
    // within each β piece, so its minimum over t ≥ r_j is attained at r_j
    // or at a β breakpoint.
    let mut feasibility = PointChecks::new();
    let breaks = duals.beta.breakpoints();
    for j in trace.jobs() {
        let a = duals.alpha[j.id as usize];
        let p = j.size;
        let pk = ipow(p, k);
        let mut check_at = |t: f64| {
            let rhs = g * ipow(t - j.arrival, k) + g * pk + p * duals.beta.at(t);
            feasibility.record(LemmaCheck::leq(a, rhs));
        };
        check_at(j.arrival);
        let start = breaks.partition_point(|&b| b <= j.arrival);
        for &b in &breaks[start..] {
            check_at(b);
        }
    }

    // ---- Lemmas 3 and 4 on sampled points ---------------------------------
    let mut lemma3 = PointChecks::new();
    let mut lemma4 = PointChecks::new();
    if let Some(profile) = sched.profile.as_ref() {
        let n = trace.len();
        let stride = (n / sample_jobs.max(1)).max(1);
        let horizon = profile.end();
        // B(t) membership intervals per job: [r_j', C_j' + ε·F_j'].
        let b_interval: Vec<(f64, f64)> = trace
            .jobs()
            .iter()
            .map(|j| {
                let id = j.id as usize;
                (j.arrival, sched.completion[id] + eps * sched.flow[id])
            })
            .collect();

        for j in trace.jobs().iter().step_by(stride) {
            let jid = j.id as usize;
            let cj = sched.completion[jid];
            // Sample times: r_j, mid-life, completion, and beyond.
            let ts = [
                j.arrival,
                0.5 * (j.arrival + cj),
                cj,
                cj + eps * sched.flow[jid],
                0.5 * (cj + horizon),
            ];
            for &t in &ts {
                if t < j.arrival {
                    continue;
                }
                // Half-open to match β's right-continuity: at the instant
                // a job's window closes it no longer contributes to β(t),
                // so it must not be counted in B(t) either.
                let in_b = |jp: u32| {
                    let (s, e) = b_interval[jp as usize];
                    t >= s && t < e
                };
                // Split the overloaded part of α_j by B(t) membership.
                let mut part_out = 0.0; // (4): j' ∉ B(t)
                let mut part_in = 0.0; // (5): j' ∈ B(t)
                for seg in profile.segments() {
                    if seg.t1 <= j.arrival || seg.t0 >= cj || seg.rates.len() < duals.m {
                        continue;
                    }
                    let (t0, t1) = (seg.t0.max(j.arrival), seg.t1.min(cj));
                    if t1 <= t0 {
                        continue;
                    }
                    let inv_n = 1.0 / seg.rates.len() as f64;
                    for &(jp, _) in seg.rates {
                        if jp > j.id {
                            break; // sorted by id = arrival order
                        }
                        let r = trace.job(jp).arrival;
                        let delta = (ipow(t1 - r, k) - ipow(t0 - r, k)) * inv_n;
                        if in_b(jp) {
                            part_in += delta;
                        } else {
                            part_out += delta;
                        }
                    }
                }
                lemma3.record(LemmaCheck::leq(part_out, g * ipow(t - j.arrival, k)));
                lemma4.record(LemmaCheck::leq(part_in, j.size * duals.beta.at(t)));
            }
        }
    }

    let min_alpha = duals.alpha.iter().fold(0.0f64, |a, &x| a.min(x));

    CheckReport {
        lemma1,
        lemma2,
        gap,
        feasibility,
        lemma3,
        lemma4,
        min_alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duals::build_duals;
    use crate::eta;
    use tf_policies::RoundRobin;
    use tf_simcore::{simulate, MachineConfig, SimOptions};

    fn run(pairs: &[(f64, f64)], m: usize, k: u32, eps: f64) -> (Trace, Schedule, DualAssignment) {
        let t = Trace::from_pairs(pairs.iter().copied()).unwrap();
        let s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::with_speed(m, eta(k, eps)),
            SimOptions::with_profile(),
        )
        .unwrap();
        let d = build_duals(&t, &s, k, eps);
        (t, s, d)
    }

    #[test]
    fn lemma_check_slack_signs() {
        let ok = LemmaCheck::geq(2.0, 1.0);
        assert!(ok.ok && ok.slack > 0.0);
        let bad = LemmaCheck::geq(1.0, 2.0);
        assert!(!bad.ok && bad.slack < 0.0);
        let ok = LemmaCheck::leq(1.0, 2.0);
        assert!(ok.ok && ok.slack > 0.0);
    }

    #[test]
    fn simple_instance_certifies() {
        let (t, s, d) = run(&[(0.0, 1.0), (0.0, 2.0), (1.0, 1.0)], 1, 2, 0.05);
        let r = check_duals(&t, &s, &d, 8);
        assert!(r.lemma1.ok, "{:?}", r.lemma1);
        assert!(r.lemma2.ok, "{:?}", r.lemma2);
        assert!(r.gap.ok, "{:?}", r.gap);
        assert!(r.feasibility.ok(), "{:?}", r.feasibility);
        assert!(r.lemma3.ok(), "{:?}", r.lemma3);
        assert!(r.lemma4.ok(), "{:?}", r.lemma4);
        assert!(r.certified());
    }

    #[test]
    fn multiple_machines_certify() {
        let (t, s, d) = run(
            &[(0.0, 1.0), (0.0, 1.0), (0.0, 2.0), (0.5, 1.0), (2.0, 3.0)],
            2,
            2,
            0.05,
        );
        let r = check_duals(&t, &s, &d, 8);
        assert!(r.certified(), "{r:?}");
    }

    #[test]
    fn k1_and_k3_certify() {
        for k in [1u32, 3] {
            let (t, s, d) = run(&[(0.0, 2.0), (1.0, 1.0), (1.0, 1.0)], 1, k, 0.05);
            let r = check_duals(&t, &s, &d, 8);
            assert!(r.certified(), "k={k}: {r:?}");
        }
    }

    #[test]
    fn too_little_speed_breaks_the_gap() {
        // At speed 1 (far below η = 2k(1+10ε)) on a congested instance the
        // dual construction must lose some guarantee: the *certificate*
        // (conjunction of all checks) should fail even though individual
        // pieces may hold.
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (0.25 * i as f64, 1.0)).collect();
        let t = Trace::from_pairs(pairs).unwrap();
        let s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::with_speed(1, 1.0),
            SimOptions::with_profile(),
        )
        .unwrap();
        let d = build_duals(&t, &s, 2, 0.05);
        let r = check_duals(&t, &s, &d, 8);
        // Lemmas 1/2 are speed-independent identities of the construction;
        // feasibility is where insufficient speed shows up.
        assert!(r.lemma1.ok && r.lemma2.ok);
        assert!(!r.feasibility.ok(), "feasibility unexpectedly held: {r:?}");
    }

    #[test]
    fn pairing_inequality_holds_everywhere() {
        for pairs in [
            vec![(0.0, 1.0), (0.0, 2.0), (0.5, 1.0), (1.0, 3.0)],
            (0..12)
                .map(|i| (0.3 * i as f64, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            for k in [1u32, 2, 3] {
                let s = simulate(
                    &t,
                    &mut RoundRobin::new(),
                    MachineConfig::with_speed(1, 2.0),
                    SimOptions::with_profile(),
                )
                .unwrap();
                let res = lemma1_pairing_check(&t, &s, k);
                assert!(res.checked > 0);
                assert!(res.ok(), "k={k}: {res:?}");
                // The pairing bound is tight-ish but the margin is real:
                assert!(res.worst_slack >= 0.0);
            }
        }
    }

    #[test]
    fn pairing_check_without_profile_is_vacuous() {
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        let res = lemma1_pairing_check(&t, &s, 2);
        assert_eq!(res.checked, 0);
        assert!(res.ok());
    }

    #[test]
    fn min_alpha_reported() {
        // Many simultaneous jobs: the earliest-arriving job's α goes
        // negative (tiny share of the overloaded integral minus ε·F^k).
        let pairs: Vec<(f64, f64)> = (0..30).map(|_| (0.0, 1.0)).collect();
        let (t, s, d) = run(&pairs, 1, 2, 0.1);
        let r = check_duals(&t, &s, &d, 4);
        assert!(
            r.min_alpha < 0.0,
            "expected a negative alpha, got {}",
            r.min_alpha
        );
        // The aggregate Lemma 1 must still hold.
        assert!(r.lemma1.ok);
    }
}

//! End-to-end Theorem 1 certificates.

use crate::checks::{check_duals, CheckReport};
use crate::duals::{build_duals, DualAssignment};
use crate::{eta, gamma};
use serde::{Deserialize, Serialize};
use tf_policies::RoundRobin;
use tf_simcore::{simulate, MachineConfig, Schedule, SimError, SimOptions, SimStats, Trace};

/// A per-instance certificate of the paper's Theorem 1 pipeline.
///
/// If [`Certificate::certified`] is true, then by weak duality this
/// instance satisfies
///
/// ```text
///   RRᵏ(η-speed)  ≤  (2γ / ((3/2)ε)) · OPTᵏ(1-speed)
/// ```
///
/// i.e. the ℓk-norm competitive ratio of RR at speed `η = 2k(1+10ε)` is at
/// most `implied_ratio_bound = (4γ/(3ε))^{1/k} = O(k/ε)` — exactly the
/// theorem's statement, *proved for this instance by the numbers in this
/// struct*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Certificate {
    /// Exponent k of the ℓk norm.
    pub k: u32,
    /// The ε parameter (also δ).
    pub eps: f64,
    /// Machines.
    pub m: usize,
    /// RR's speed in this run (η for the canonical certificate).
    pub speed: f64,
    /// γ = k(k/ε)^{k−1}.
    pub gamma: f64,
    /// RR's k-th power sum Σ F_j^k at that speed.
    pub rr_power_sum: f64,
    /// Σ_j α_j.
    pub alpha_sum: f64,
    /// m·∫β.
    pub beta_mass: f64,
    /// Dual objective Σα − m∫β.
    pub dual_objective: f64,
    /// All the lemma/feasibility checks.
    pub report: CheckReport,
    /// The ratio bound implied when certified: `(4γ/(3ε))^{1/k}`.
    pub implied_ratio_bound: f64,
    /// Number of jobs in the instance.
    pub n: usize,
    /// Engine counters from the certifying RR run (step breakdown, peak
    /// alive set, allocator time).
    pub sim: SimStats,
}

impl Certificate {
    /// True iff every check passed and the instance is certified.
    pub fn certified(&self) -> bool {
        self.report.certified()
    }
}

/// Run the full Theorem 1 pipeline at the paper's prescribed speed
/// `η = 2k(1+10ε)`: simulate RR, build duals, check everything.
pub fn verify_theorem1(trace: &Trace, m: usize, k: u32, eps: f64) -> Result<Certificate, SimError> {
    verify_theorem1_at_speed(trace, m, k, eps, eta(k, eps))
}

/// Same pipeline at an arbitrary speed — used to probe how much
/// augmentation the dual construction *actually* needs on a given
/// instance (experiment E10's speed ablation).
pub fn verify_theorem1_at_speed(
    trace: &Trace,
    m: usize,
    k: u32,
    eps: f64,
    speed: f64,
) -> Result<Certificate, SimError> {
    let cfg = MachineConfig::with_speed(m, speed);
    let sched = simulate(
        trace,
        &mut RoundRobin::new(),
        cfg,
        SimOptions::with_profile().timed(),
    )?;
    Ok(certify_schedule(trace, &sched, k, eps))
}

/// Build duals and check them for an existing RR schedule (must carry a
/// profile).
pub fn certify_schedule(trace: &Trace, sched: &Schedule, k: u32, eps: f64) -> Certificate {
    let duals: DualAssignment = build_duals(trace, sched, k, eps);
    let report = check_duals(trace, sched, &duals, 16);
    let alpha_sum: f64 = duals.alpha.iter().sum();
    let beta_mass = duals.m as f64 * duals.beta.integral();
    let g = gamma(k, eps);
    Certificate {
        k,
        eps,
        m: duals.m,
        speed: sched.cfg.speed,
        gamma: g,
        rr_power_sum: duals.rr_power_sum,
        alpha_sum,
        beta_mass,
        dual_objective: alpha_sum - beta_mass,
        report,
        implied_ratio_bound: (4.0 * g / (3.0 * eps)).powf(1.0 / f64::from(k)),
        n: trace.len(),
        sim: sched.stats,
    }
}

/// Binary-search the smallest speed at which the Theorem 1 dual
/// construction certifies this instance (for the given `k`, `eps`).
///
/// Returns the smallest certified speed found in `[lo, hi]` within
/// `tol`, or `None` if even `hi` fails. This measures, per instance, how
/// conservative the paper's prescribed `η = 2k(1+10ε)` is — the proof
/// needs the full η only for worst-case Lemma 4 configurations.
pub fn min_certified_speed(
    trace: &Trace,
    m: usize,
    k: u32,
    eps: f64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Option<f64> {
    let certified_at = |s: f64| {
        verify_theorem1_at_speed(trace, m, k, eps, s)
            .map(|c| c.certified())
            .unwrap_or(false)
    };
    if !certified_at(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if certified_at(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_on_small_instance() {
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0), (1.0, 1.0), (3.0, 2.0)]).unwrap();
        let c = verify_theorem1(&t, 1, 2, 0.05).unwrap();
        assert!(c.certified(), "{c:?}");
        assert!((c.speed - eta(2, 0.05)).abs() < 1e-12);
        assert!(c.dual_objective >= 1.5 * c.eps * c.rr_power_sum - 1e-9);
        // O(k/ε): for k=2, ε=0.05 the bound is (4·2·40/0.15)^(1/2)… compute
        // from the formula directly instead:
        let expect = (4.0 * gamma(2, 0.05) / (3.0 * 0.05)).sqrt();
        assert!((c.implied_ratio_bound - expect).abs() < 1e-9);
    }

    #[test]
    fn certificates_across_k_m() {
        let t = Trace::from_pairs([
            (0.0, 2.0),
            (0.0, 1.0),
            (0.5, 1.0),
            (1.0, 3.0),
            (2.0, 1.0),
            (2.0, 1.0),
        ])
        .unwrap();
        for k in [1u32, 2, 3] {
            for m in [1usize, 2, 4] {
                let c = verify_theorem1(&t, m, k, 0.05).unwrap();
                assert!(c.certified(), "k={k} m={m}: {:?}", c.report);
            }
        }
    }

    #[test]
    fn empty_instance_certifies_vacuously() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let c = verify_theorem1(&t, 1, 2, 0.1).unwrap();
        assert!(c.certified());
        assert_eq!(c.rr_power_sum, 0.0);
    }

    #[test]
    fn min_certified_speed_brackets_eta() {
        let pairs: Vec<(f64, f64)> = (0..16).map(|i| (0.5 * i as f64, 1.0)).collect();
        let t = Trace::from_pairs(pairs).unwrap();
        let (k, eps) = (2u32, 0.05);
        let prescribed = eta(k, eps);
        let s = min_certified_speed(&t, 1, k, eps, 0.5, prescribed, 0.05).unwrap();
        // The prescribed speed certifies, and on this mildly congested
        // instance the construction has large slack: it certifies far
        // below η (γ = k(k/ε)^{k−1} buys feasibility headroom). The search
        // reports a boundary inside [lo, η].
        assert!(s <= prescribed + 1e-9);
        assert!(s >= 0.5);
        assert!(
            s < prescribed / 2.0,
            "expected large per-instance slack, got {s} vs eta {prescribed}"
        );
        let at = verify_theorem1_at_speed(&t, 1, k, eps, s).unwrap();
        assert!(at.certified());
    }

    #[test]
    fn min_certified_speed_none_when_hi_insufficient() {
        let pairs: Vec<(f64, f64)> = (0..16).map(|i| (0.5 * i as f64, 1.0)).collect();
        let t = Trace::from_pairs(pairs).unwrap();
        assert!(min_certified_speed(&t, 1, 2, 0.05, 0.1, 0.5, 0.05).is_none());
    }

    #[test]
    fn low_speed_probe_fails_on_congested_instance() {
        let pairs: Vec<(f64, f64)> = (0..24).map(|i| (0.5 * i as f64, 1.0)).collect();
        let t = Trace::from_pairs(pairs).unwrap();
        let hi = verify_theorem1(&t, 1, 2, 0.05).unwrap();
        assert!(hi.certified(), "{:?}", hi.report);
        let lo = verify_theorem1_at_speed(&t, 1, 2, 0.05, 1.0).unwrap();
        assert!(!lo.certified());
    }
}

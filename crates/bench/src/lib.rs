#![warn(missing_docs)]

//! # tf-bench — benchmark support
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `experiments` — one Criterion target per experiment table (E1–E20),
//!   regenerating each table at `Effort::Quick`;
//! * `engine` — simulator throughput across policies and instance sizes;
//! * `solvers` — min-cost-flow / LP lower-bound scaling;
//! * `ablations` — design-choice ablations called out in DESIGN.md
//!   (adaptive-step fidelity, LAPS β sweep, profile-recording overhead,
//!   McNaughton realization cost).
//!
//! This library only hosts shared fixture helpers.

use tf_simcore::Trace;
use tf_workload::{ArrivalProcess, SizeDist, WorkloadSpec};

/// A reproducible Poisson/exponential workload of `n` jobs at ~90% load of
/// one machine, used across bench targets so numbers are comparable.
pub fn bench_trace(n: usize, seed: u64) -> Trace {
    WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate: 0.9 / 3.0 },
        sizes: SizeDist::Exponential { mean: 3.0 },
        seed,
    }
    .generate()
}

/// Integral variant for LP-dependent targets.
pub fn bench_trace_integral(n: usize, seed: u64) -> Trace {
    bench_trace(n, seed).to_integral()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_sized() {
        let a = bench_trace(100, 1);
        let b = bench_trace(100, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(bench_trace_integral(50, 2).is_integral(1e-9));
    }
}

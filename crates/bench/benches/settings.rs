//! Throughput of the alternative-setting substrates: immediate dispatch,
//! speed-up curves, and broadcast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tf_bench::bench_trace;
use tf_broadcast::{simulate_broadcast, BroadcastInstance, Lwf, PerPageRR, PerRequestRR};
use tf_dispatch::{simulate_dispatch, DispatchRule};
use tf_policies::Policy;
use tf_speedup::families::seq_swarm_overlapped;
use tf_speedup::{simulate_speedup, Equi, GreedyPar};

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("settings/dispatch");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let trace = bench_trace(1000, 41);
    for rule in [
        DispatchRule::Cyclic,
        DispatchRule::LeastWork,
        DispatchRule::Random { seed: 7 },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(rule.label()),
            &rule,
            |b, &rule| {
                b.iter(|| black_box(simulate_dispatch(&trace, rule, Policy::Rr, 4, 1.0).unwrap()))
            },
        );
    }
    g.finish();
}

fn bench_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("settings/speedup");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let t = seq_swarm_overlapped(8, 1.0, 16.0, 600, 4);
    g.bench_function("equi_seq_swarm", |b| {
        b.iter(|| black_box(simulate_speedup(&t, &mut Equi, 1.0, 1.0)))
    });
    g.bench_function("greedypar_seq_swarm", |b| {
        b.iter(|| black_box(simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0)))
    });
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("settings/broadcast");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let i = BroadcastInstance::hot_cold(50, 16, 2.0, 50);
    g.bench_function("per_page_rr", |b| {
        b.iter(|| black_box(simulate_broadcast(&i, &mut PerPageRR, 1.0)))
    });
    g.bench_function("per_request_rr", |b| {
        b.iter(|| black_box(simulate_broadcast(&i, &mut PerRequestRR, 1.0)))
    });
    g.bench_function("lwf", |b| {
        b.iter(|| black_box(simulate_broadcast(&i, &mut Lwf, 1.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_speedup, bench_broadcast);
criterion_main!(benches);

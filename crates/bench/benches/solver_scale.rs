//! The PR-7 scale benches: certified lower bounds far past the old
//! frontier. Two criterion groups time the exact arena solver and the
//! warm-startable column-generation solver head to head at n = 160/320
//! (the sizes the committed `BENCH_3.json` record gates on), then a
//! one-shot pass pushes the colgen solver up the size ladder to
//! n = 5000, recording wall-clock seconds and the certified value of
//! every point. Results land in `BENCH_5.json` at the repo root with
//! `speedup_vs_bench3` ratios against the committed PR-3 medians, so the
//! headline "same certificate, ≥5× faster" claim is machine-comparable.
//!
//! Column generation is exact (clean pricing ⇒ full-LP dual
//! feasibility), so every frontier point is a true certified bound with
//! δ = 0; the n = 5000 entry additionally records an interval-aggregated
//! solve at its default 1 % gap target for the δ-tunable path.
//!
//! Run with `cargo bench -p tf-bench --bench solver_scale`. Set
//! `BENCH_MEASURE_MS` / `BENCH_WARMUP_MS` for a quick smoke pass — the
//! frontier then stops at n = 640 so CI stays fast.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;
use tf_bench::bench_trace_integral;
use tf_lowerbound::{
    lk_lower_bound, lk_lower_bound_aggregated, lk_lower_bound_colgen_budgeted, AggConfig,
    SolveBudget,
};

/// The gate sizes: present in `BENCH_3.json`, so old/new is well-defined.
const GATE_SIZES: [usize; 2] = [160, 320];

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale/lower_bound_exact");
    g.sample_size(10);
    for &n in &GATE_SIZES {
        let trace = bench_trace_integral(n, 19);
        g.bench_with_input(BenchmarkId::new("lk_k2_m2", n), &trace, |b, t| {
            b.iter(|| black_box(lk_lower_bound(t, 2, 2)))
        });
    }
    g.finish();
}

fn bench_colgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale/lower_bound_colgen");
    g.sample_size(10);
    let unlimited = SolveBudget::unlimited();
    for &n in &GATE_SIZES {
        let trace = bench_trace_integral(n, 19);
        g.bench_with_input(BenchmarkId::new("lk_k2_m2", n), &trace, |b, t| {
            b.iter(|| {
                black_box(
                    lk_lower_bound_colgen_budgeted(t, 2, 2, &unlimited, None)
                        .expect("unlimited budget never trips"),
                )
            })
        });
    }
    g.finish();
}

/// One certified frontier point: wall-clock seconds plus the bound.
struct FrontierPoint {
    n: usize,
    seconds: f64,
    value: f64,
    kind: &'static str,
    /// Certified relative gap to the exact LP: 0 for colgen, the
    /// reported sandwich gap for the aggregated entry.
    delta: f64,
    method: &'static str,
}

/// Time the colgen solver once per ladder size (criterion sampling at
/// n = 5000 would take minutes for no extra information — the solve is
/// deterministic and seconds long, so one measurement is the number).
fn certified_frontier(smoke: bool) -> Vec<FrontierPoint> {
    let sizes: &[usize] = if smoke {
        &[640]
    } else {
        &[640, 1280, 2560, 5000]
    };
    let unlimited = SolveBudget::unlimited();
    let mut points = Vec::new();
    for &n in sizes {
        let trace = bench_trace_integral(n, 7);
        let t0 = Instant::now();
        let (lb, _, _) = lk_lower_bound_colgen_budgeted(&trace, 2, 2, &unlimited, None)
            .expect("unlimited budget never trips");
        points.push(FrontierPoint {
            n,
            seconds: t0.elapsed().as_secs_f64(),
            value: lb.value,
            kind: lb.kind.label(),
            delta: 0.0,
            method: "colgen",
        });
    }
    // The δ-tunable path, demonstrated at the first ladder size. Colgen
    // already carries an exact (δ = 0) certificate to n = 5000, so the
    // aggregated entry only needs to show the sandwich machinery works
    // end to end — and its refinement loop re-solves the whole grid per
    // round, which at n = 5000 costs minutes for strictly less
    // information than the seconds-long exact colgen solve.
    {
        let n = sizes[0];
        let trace = bench_trace_integral(n, 7);
        let t0 = Instant::now();
        let agg = lk_lower_bound_aggregated(&trace, 2, 2, &AggConfig::default(), &unlimited)
            .expect("unlimited budget never trips");
        points.push(FrontierPoint {
            n,
            seconds: t0.elapsed().as_secs_f64(),
            value: agg.value,
            kind: agg.kind.label(),
            delta: agg.rel_gap,
            method: "agg",
        });
    }
    points
}

/// The X3-style equivalence gate at the largest criterion size: the
/// colgen value must match the exact solver bit-for-bit in relative
/// terms before its timings mean anything.
fn equivalence_at_gate() -> f64 {
    let trace = bench_trace_integral(320, 19);
    let exact = lk_lower_bound(&trace, 2, 2);
    let (cg, _, _) = lk_lower_bound_colgen_budgeted(&trace, 2, 2, &SolveBudget::unlimited(), None)
        .expect("unlimited budget never trips");
    let rel = (cg.value - exact.value).abs() / exact.value.abs().max(1.0);
    assert!(
        rel <= 1e-9,
        "colgen diverged from the exact solver at n=320: {} vs {}",
        cg.value,
        exact.value
    );
    rel
}

fn median_of(results: &[criterion::BenchResult], group: &str, bench: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}

/// Pull `median_ns` for (group, bench) out of the committed
/// `BENCH_3.json` record (one bench per line, same as `perf.rs` writes).
fn committed_median(record: &str, group: &str, bench: &str) -> Option<f64> {
    let group_tag = format!("\"group\": {group:?}");
    let bench_tag = format!("\"bench\": {bench:?}");
    for line in record.lines() {
        if line.contains(&group_tag) && line.contains(&bench_tag) {
            let rest = line.split("\"median_ns\": ").nth(1)?;
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return num.parse().ok();
        }
    }
    None
}

fn write_bench5(results: &[criterion::BenchResult], frontier: &[FrontierPoint], equivalence: f64) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_5.json");
    let bench3 = std::fs::read_to_string(format!("{root}/BENCH_3.json")).unwrap_or_default();

    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": {:?}, \"bench\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}}}{}\n",
            r.group,
            r.bench,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }

    // The headline gate: this run's colgen medians vs the committed PR-3
    // record of the exact solver on the same trace family. Ratios are
    // old/new, so 5.0 means five times faster.
    out.push_str("  ],\n  \"speedup_vs_bench3\": {\n");
    let mut lines = Vec::new();
    for n in GATE_SIZES {
        let bench = format!("lk_k2_m2/{n}");
        if let (Some(new), Some(old)) = (
            median_of(results, "scale/lower_bound_colgen", &bench),
            committed_median(&bench3, "perf/lower_bound", &bench),
        ) {
            lines.push(format!("    {bench:?}: {:.3}", old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    // Same binary, same run: colgen vs this PR's exact solver (which the
    // settled-region blocking flow also sped up, so this in-run ratio is
    // smaller than the cross-PR headline above).
    out.push_str("\n  },\n  \"colgen_speedup_in_run\": {\n");
    let mut lines = Vec::new();
    for n in GATE_SIZES {
        let bench = format!("lk_k2_m2/{n}");
        if let (Some(new), Some(old)) = (
            median_of(results, "scale/lower_bound_colgen", &bench),
            median_of(results, "scale/lower_bound_exact", &bench),
        ) {
            lines.push(format!("    {bench:?}: {:.3}", old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    out.push_str("\n  },\n  \"certified_frontier\": [\n");
    for (i, p) in frontier.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"method\": {:?}, \"seconds\": {:.3}, \"value\": {:.6}, \"kind\": {:?}, \"delta\": {:.6}}}{}\n",
            p.n,
            p.method,
            p.seconds,
            p.value,
            p.kind,
            p.delta,
            if i + 1 < frontier.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"equivalence_at_320_rel_diff\": {equivalence:.3e}\n}}\n"
    ));

    let mut f = std::fs::File::create(&path).expect("create BENCH_5.json");
    f.write_all(out.as_bytes()).expect("write BENCH_5.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::var_os("BENCH_MEASURE_MS").is_some();
    let equivalence = equivalence_at_gate();
    let mut c = Criterion::default();
    bench_exact(&mut c);
    bench_colgen(&mut c);
    c.flush_json();
    let frontier = certified_frontier(smoke);
    write_bench5(c.results(), &frontier, equivalence);
}

//! Design-choice ablations called out in DESIGN.md §4.
//!
//! * **Stepping fidelity** (`ablation/stepping`): the adaptive-step
//!   integrator for continuously-varying policies (AgedRR) trades accuracy
//!   for events — sweep `max_step` and report both cost and the l2 drift
//!   from the finest step.
//! * **LAPS β sweep** (`ablation/laps`): LAPS(1) = RR; how does the l2
//!   objective move as β shrinks toward favoring the latest arrivals?
//! * **McNaughton realization** (`ablation/mcnaughton`): cost of turning a
//!   fractional RR profile into per-machine timetables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tf_bench::bench_trace;
use tf_policies::{Laps, RoundRobin};
use tf_simcore::mcnaughton::wrap_around;
use tf_simcore::{simulate, MachineConfig, SimOptions};

fn bench_stepping(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/stepping");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let trace = bench_trace(80, 29);
    let cfg = MachineConfig::new(2);
    for &step in &[0.5, 0.1, 0.02] {
        g.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, &step| {
            b.iter(|| {
                let mut p = tf_policies::AgedRoundRobin::new();
                let opts = SimOptions {
                    max_step: Some(step),
                    ..Default::default()
                };
                black_box(simulate(&trace, &mut p, cfg, opts).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_laps_beta(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/laps");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let trace = bench_trace(200, 31);
    let cfg = MachineConfig::new(2);
    for &beta in &[0.25, 0.5, 1.0] {
        g.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            b.iter(|| {
                let mut p = Laps::new(beta);
                let s = simulate(&trace, &mut p, cfg, SimOptions::default()).unwrap();
                black_box(s.flow_norm(2.0))
            })
        });
    }
    g.finish();
}

fn bench_mcnaughton(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/mcnaughton");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let trace = bench_trace(500, 37);
    let cfg = MachineConfig::new(4);
    let sched = simulate(
        &trace,
        &mut RoundRobin::new(),
        cfg,
        SimOptions::with_profile(),
    )
    .unwrap();
    let profile = sched.profile.unwrap();
    g.bench_function("realize_full_profile", |b| {
        b.iter(|| {
            for seg in profile.segments() {
                black_box(wrap_around(seg, cfg.m, cfg.speed).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stepping, bench_laps_beta, bench_mcnaughton);
criterion_main!(benches);

//! Scaling of the analysis machinery: LP lower bound (min-cost flow) and
//! the dual-fitting certificate pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tf_bench::bench_trace_integral;
use tf_core::verify_theorem1;
use tf_lowerbound::{lk_lower_bound, lp_relaxation_value};

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers/lp");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let trace = bench_trace_integral(n, 17);
        for k in [1u32, 2] {
            g.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &trace, |b, t| {
                b.iter(|| black_box(lp_relaxation_value(t, 2, k)))
            });
        }
    }
    g.finish();
}

fn bench_combined_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers/lower_bound");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let trace = bench_trace_integral(60, 19);
    g.bench_function("lk_lower_bound_k2_m2", |b| {
        b.iter(|| black_box(lk_lower_bound(&trace, 2, 2)))
    });
    g.finish();
}

fn bench_certificate(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers/certificate");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let trace = bench_trace_integral(n, 23);
        g.bench_with_input(BenchmarkId::new("verify_theorem1_k2", n), &trace, |b, t| {
            b.iter(|| {
                let cert = verify_theorem1(t, 2, 2, 0.05).unwrap();
                assert!(cert.certified());
                black_box(cert)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lp, bench_combined_bound, bench_certificate);
criterion_main!(benches);

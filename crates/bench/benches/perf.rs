//! The PR-gating performance benches: engine throughput with and without
//! profile recording, the pre-optimization engine as a same-machine
//! baseline, the arena-based `lk_lower_bound` next to the PR-1
//! unit-augmenting SSP oracle, and one adversarial-hunt generation.
//! Results land in `BENCH_3.json` at the repo root with speedup ratios
//! against the in-run SSP oracle and the committed `BENCH_1.json` and
//! `BENCH_2.json` records (both kept untouched as historical baselines),
//! so before/after numbers are machine-comparable. The `*_vs_bench2`
//! ratios gate the tf-obs tracing layer: with tracing off they must stay
//! within 2 % of the pre-instrumentation record.
//!
//! Run with `cargo bench -p tf-bench --bench perf`. Set `BENCH_MEASURE_MS`
//! / `BENCH_WARMUP_MS` for a quick smoke pass.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Duration;
use tf_bench::{bench_trace, bench_trace_integral};
use tf_harness::hunt::{hunt, HuntConfig};
use tf_lowerbound::{lk_lower_bound, lk_lower_bound_reference};
use tf_policies::Policy;
use tf_simcore::alloc::check_rates;
use tf_simcore::{
    simulate, AliveJob, MachineConfig, Profile, RateAllocator, Schedule, Segment, SimError,
    SimOptions, Trace, ABS_EPS, REL_EPS,
};

/// The engine's hot loop as it stood before the incremental-alive-set
/// optimization: per-event `views` rebuild, `Vec::remove` completion
/// sweep, and one `Vec<(u32, f64)>` allocation per recorded segment. Kept
/// verbatim (modulo the `Profile` constructor) so the speedup reported in
/// `BENCH_1.json` measures the optimization, not an easier strawman.
fn baseline_simulate(
    trace: &Trace,
    policy: &mut dyn RateAllocator,
    cfg: MachineConfig,
    opts: SimOptions,
) -> Result<Schedule, SimError> {
    struct AliveState {
        job: usize,
        remaining: f64,
        attained: f64,
    }

    cfg.validate()?;
    policy.reset();

    let n = trace.len();
    let jobs = trace.jobs();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];
    let mut segments: Vec<Segment> = Vec::new();

    let event_budget = {
        let n64 = n as u64;
        4096 + 64 * n64 * n64.max(1)
    };

    let mut alive: Vec<AliveState> = Vec::new();
    let mut next_arrival = 0usize;
    let mut time = 0.0_f64;
    let mut events: u64 = 0;

    let mut views: Vec<AliveJob> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();

    loop {
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            alive.push(AliveState {
                job: next_arrival,
                remaining: jobs[next_arrival].size,
                attained: 0.0,
            });
            next_arrival += 1;
            events += 1;
        }

        if alive.is_empty() {
            if next_arrival >= n {
                break;
            }
            time = jobs[next_arrival].arrival;
            continue;
        }

        if events > event_budget {
            return Err(SimError::EventBudgetExhausted { events });
        }

        views.clear();
        views.extend(alive.iter().map(|a| {
            let j = &jobs[a.job];
            AliveJob {
                id: j.id,
                arrival: j.arrival,
                size: j.size,
                weight: j.weight,
                remaining: a.remaining,
                attained: a.attained,
                seq: j.id,
            }
        }));

        rates.clear();
        rates.resize(alive.len(), 0.0);
        policy.allocate(time, &views, &cfg, &mut rates);
        check_rates(&views, &cfg, &rates, REL_EPS)?;
        for r in rates.iter_mut() {
            *r = r.clamp(0.0, cfg.job_cap());
        }

        let mut dt = f64::INFINITY;
        let mut arrival_at = None;
        if next_arrival < n {
            let d = jobs[next_arrival].arrival - time;
            if d < dt {
                dt = d;
                arrival_at = Some(jobs[next_arrival].arrival);
            }
        }
        for (a, &r) in alive.iter().zip(&rates) {
            if r > ABS_EPS {
                let d = a.remaining / r;
                if d < dt {
                    dt = d;
                    arrival_at = None;
                }
            }
        }
        if let Some(rev) = policy.review_in(time, &views, &cfg) {
            let rev = rev.max(ABS_EPS);
            if rev < dt {
                dt = rev;
                arrival_at = None;
            }
        }

        if !dt.is_finite() {
            return Err(SimError::Stalled {
                time,
                alive: alive.len(),
            });
        }

        if opts.record_profile && dt > 0.0 {
            let seg_rates: Vec<(u32, f64)> =
                views.iter().zip(&rates).map(|(v, &r)| (v.id, r)).collect();
            segments.push(Segment {
                t0: time,
                t1: time + dt,
                rates: seg_rates,
            });
        }
        for (a, &r) in alive.iter_mut().zip(&rates) {
            let w = r * dt;
            a.attained += w;
            a.remaining -= w;
        }
        time = match arrival_at {
            Some(at) => at,
            None => time + dt,
        };
        if opts.record_profile {
            if let Some(s) = segments.last_mut() {
                s.t1 = s.t1.max(time);
            }
        }
        events += 1;

        let mut i = 0;
        while i < alive.len() {
            let a = &alive[i];
            let j = &jobs[a.job];
            if a.remaining <= j.size * REL_EPS + ABS_EPS {
                completion[a.job] = time;
                flow[a.job] = time - j.arrival;
                alive.remove(i);
            } else {
                i += 1;
            }
        }
    }

    let profile = if opts.record_profile {
        let mut p = Profile::from_segments(segments, cfg.m, cfg.speed);
        p.coalesce(ABS_EPS);
        Some(p)
    } else {
        None
    };

    Ok(Schedule {
        policy: policy.name().to_string(),
        cfg,
        completion,
        flow,
        profile,
        events,
        stats: Default::default(),
    })
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/engine");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for &n in &[100usize, 1000] {
        let trace = bench_trace(n, 11);
        for (mode, opts) in [
            ("profile_off", SimOptions::default()),
            ("profile_on", SimOptions::with_profile()),
        ] {
            g.bench_with_input(BenchmarkId::new(mode, n), &trace, |b, t| {
                b.iter(|| {
                    let mut alloc = Policy::Rr.make();
                    black_box(simulate(t, alloc.as_mut(), MachineConfig::new(1), opts).unwrap())
                })
            });
        }
    }
    g.finish();
}

fn bench_engine_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/engine_baseline");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for &n in &[100usize, 1000] {
        let trace = bench_trace(n, 11);
        for (mode, opts) in [
            ("profile_off", SimOptions::default()),
            ("profile_on", SimOptions::with_profile()),
        ] {
            g.bench_with_input(BenchmarkId::new(mode, n), &trace, |b, t| {
                b.iter(|| {
                    let mut alloc = Policy::Rr.make();
                    black_box(
                        baseline_simulate(t, alloc.as_mut(), MachineConfig::new(1), opts).unwrap(),
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/lower_bound");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    // n = 160/320 were unreachable in the PR-1 suite (the SSP oracle
    // needed ~100 ms at n = 80 already); they gate the multi-unit solver.
    for &n in &[40usize, 80, 160, 320] {
        let trace = bench_trace_integral(n, 19);
        g.bench_with_input(BenchmarkId::new("lk_k2_m2", n), &trace, |b, t| {
            b.iter(|| black_box(lk_lower_bound(t, 2, 2)))
        });
    }
    g.finish();
}

/// The unit-augmenting SSP solver on the same traces, as an in-run
/// apples-to-apples baseline (same binary, same machine state). Note this
/// oracle also benefits from the shared early-exit/capped-potential
/// Dijkstra, so the full PR-1 delta is the `*_vs_bench1` ratio, not this
/// one. Capped at n = 80: the oracle is O(flow) Dijkstra passes and large
/// n gets slow per sample.
fn bench_lower_bound_ssp(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/lower_bound_ssp");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    for &n in &[40usize, 80] {
        let trace = bench_trace_integral(n, 19);
        g.bench_with_input(BenchmarkId::new("lk_k2_m2", n), &trace, |b, t| {
            b.iter(|| black_box(lk_lower_bound_reference(t, 2, 2)))
        });
    }
    g.finish();
}

/// One full adversarial hunt (restarts x generations x batch candidate
/// evaluations, each a simulate + exact slotted OPT): the harness-side
/// fan-out path that PR 2 parallelized.
fn bench_hunt(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/hunt");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let cfg = HuntConfig {
        steps: 10,
        restarts: 1,
        max_jobs: 6,
        max_arrival: 8,
        max_size: 4,
        batch: 8,
        ..Default::default()
    };
    g.bench_with_input(BenchmarkId::new("rr_generations", 10), &cfg, |b, cfg| {
        b.iter(|| black_box(hunt(Policy::Rr, cfg)))
    });
    g.finish();
}

/// Cross-check that the baseline port is faithful: both engines must
/// produce identical flow vectors before their timings are comparable.
fn assert_baseline_matches() {
    let trace = bench_trace(1000, 11);
    let mut a = Policy::Rr.make();
    let mut b = Policy::Rr.make();
    let new = simulate(
        &trace,
        a.as_mut(),
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    let old = baseline_simulate(
        &trace,
        b.as_mut(),
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    assert_eq!(new.flow, old.flow, "baseline port diverged from engine");
    assert_eq!(new.profile, old.profile, "baseline profile diverged");
}

fn mean_of(results: &[criterion::BenchResult], group: &str, bench: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.mean_ns)
}

fn median_of(results: &[criterion::BenchResult], group: &str, bench: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}

/// Pull `median_ns` for (group, bench) out of a committed record.
/// `BENCH_1.json`/`BENCH_2.json` are written one bench per line by prior
/// versions of this harness, so a line scan is enough — no JSON
/// dependency needed.
fn committed_median(record: &str, group: &str, bench: &str) -> Option<f64> {
    let group_tag = format!("\"group\": {group:?}");
    let bench_tag = format!("\"bench\": {bench:?}");
    for line in record.lines() {
        if line.contains(&group_tag) && line.contains(&bench_tag) {
            let rest = line.split("\"median_ns\": ").nth(1)?;
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return num.parse().ok();
        }
    }
    None
}

fn write_bench3(results: &[criterion::BenchResult]) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_3.json");
    let bench1 = std::fs::read_to_string(format!("{root}/BENCH_1.json")).unwrap_or_default();
    let bench2 = std::fs::read_to_string(format!("{root}/BENCH_2.json")).unwrap_or_default();

    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": {:?}, \"bench\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}}}{}\n",
            r.group,
            r.bench,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }

    out.push_str("  ],\n  \"engine_speedup_vs_baseline\": {\n");
    let mut lines = Vec::new();
    for bench in [
        "profile_off/100",
        "profile_off/1000",
        "profile_on/100",
        "profile_on/1000",
    ] {
        if let (Some(new), Some(old)) = (
            mean_of(results, "perf/engine", bench),
            mean_of(results, "perf/engine_baseline", bench),
        ) {
            lines.push(format!("    {:?}: {:.3}", bench, old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    // Same binary, same run: arena solver vs the PR-1 SSP oracle.
    out.push_str("\n  },\n  \"lower_bound_speedup_vs_ssp\": {\n");
    let mut lines = Vec::new();
    for bench in ["lk_k2_m2/40", "lk_k2_m2/80"] {
        if let (Some(new), Some(old)) = (
            median_of(results, "perf/lower_bound", bench),
            median_of(results, "perf/lower_bound_ssp", bench),
        ) {
            lines.push(format!("    {:?}: {:.3}", bench, old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    // Cross-PR: this run's medians vs the committed BENCH_1.json record
    // (both measured on the gating machine).
    out.push_str("\n  },\n  \"lower_bound_speedup_vs_bench1\": {\n");
    let mut lines = Vec::new();
    for bench in ["lk_k2_m2/40", "lk_k2_m2/80"] {
        if let (Some(new), Some(old)) = (
            median_of(results, "perf/lower_bound", bench),
            committed_median(&bench1, "perf/lower_bound", bench),
        ) {
            lines.push(format!("    {:?}: {:.3}", bench, old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    // The tf-obs gate: this run's medians vs the committed BENCH_2.json
    // record, taken just before the tracing layer landed. Ratios are
    // old/new, so 1.0 means no change. Read them against
    // machine_drift_vs_bench2 below: BENCH_2 was recorded in a different
    // container session, so the instrumented ratios only indicate real
    // overhead to the extent they fall below the drift of the unchanged
    // reference code measured the same way.
    out.push_str("\n  },\n  \"speedup_vs_bench2\": {\n");
    let mut lines = Vec::new();
    for (group, bench) in [
        ("perf/engine", "profile_off/100"),
        ("perf/engine", "profile_off/1000"),
        ("perf/engine", "profile_on/100"),
        ("perf/engine", "profile_on/1000"),
        ("perf/lower_bound", "lk_k2_m2/40"),
        ("perf/lower_bound", "lk_k2_m2/80"),
        ("perf/lower_bound", "lk_k2_m2/160"),
        ("perf/lower_bound", "lk_k2_m2/320"),
        ("perf/hunt", "rr_generations/10"),
    ] {
        if let (Some(new), Some(old)) = (
            median_of(results, group, bench),
            committed_median(&bench2, group, bench),
        ) {
            lines.push(format!("    \"{group}/{bench}\": {:.3}", old / new));
        }
    }
    out.push_str(&lines.join(",\n"));

    // Machine-drift control: the same old/new ratio for bench targets whose
    // code has not changed since BENCH_2 (the frozen pre-optimization engine
    // loop and the unit-SSP oracle, neither of which contains a tf-obs
    // probe). Any deviation from 1.0 here is measurement/machine drift, and
    // bounds how finely speedup_vs_bench2 can be read.
    out.push_str("\n  },\n  \"machine_drift_vs_bench2\": {\n");
    let mut lines = Vec::new();
    for (group, bench) in [
        ("perf/engine_baseline", "profile_off/100"),
        ("perf/engine_baseline", "profile_off/1000"),
        ("perf/engine_baseline", "profile_on/100"),
        ("perf/engine_baseline", "profile_on/1000"),
        ("perf/lower_bound_ssp", "lk_k2_m2/40"),
        ("perf/lower_bound_ssp", "lk_k2_m2/80"),
    ] {
        if let (Some(new), Some(old)) = (
            median_of(results, group, bench),
            committed_median(&bench2, group, bench),
        ) {
            lines.push(format!("    \"{group}/{bench}\": {:.3}", old / new));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }\n}\n");

    let mut f = std::fs::File::create(&path).expect("create BENCH_3.json");
    f.write_all(out.as_bytes()).expect("write BENCH_3.json");
    println!("wrote {path}");
}

fn main() {
    assert_baseline_matches();
    let mut c = Criterion::default();
    bench_engine(&mut c);
    bench_engine_baseline(&mut c);
    bench_lower_bound(&mut c);
    bench_lower_bound_ssp(&mut c);
    bench_hunt(&mut c);
    c.flush_json();
    write_bench3(c.results());
}

//! One Criterion target per experiment: regenerates every table of the
//! evaluation (DESIGN.md §4) and measures how long each takes.
//!
//! The benched payload is the *same code path* the `experiments` CLI runs,
//! at `Effort::Quick` so `cargo bench` completes in minutes; run the CLI
//! for full-scale tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tf_harness::experiments::{all_ids, run_experiment};
use tf_harness::Effort;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    for id in all_ids() {
        g.bench_function(format!("bench_{id}_table"), |b| {
            b.iter(|| {
                let tables = run_experiment(black_box(id), Effort::Quick).expect("known id");
                assert!(!tables.is_empty());
                black_box(tables)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

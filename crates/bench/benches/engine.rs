//! Simulator throughput: wall time across policies, machine counts, and
//! instance sizes — the "can you actually use this at scale" numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tf_bench::bench_trace;
use tf_policies::Policy;
use tf_simcore::quantum::{simulate_quantum_rr, QuantumOptions};
use tf_simcore::{simulate, MachineConfig, SimOptions};

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/policy");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for &n in &[100usize, 1000] {
        let trace = bench_trace(n, 7);
        for p in [
            Policy::Rr,
            Policy::Srpt,
            Policy::Setf,
            Policy::Fcfs,
            Policy::Laps(0.5),
        ] {
            g.bench_with_input(BenchmarkId::new(p.to_string(), n), &trace, |b, t| {
                b.iter(|| {
                    let mut alloc = p.make();
                    black_box(
                        simulate(
                            t,
                            alloc.as_mut(),
                            MachineConfig::new(4),
                            SimOptions::default(),
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_continuous_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/continuous");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let trace = bench_trace(100, 9);
    g.bench_function("AgedRR_adaptive_steps", |b| {
        b.iter(|| {
            let mut alloc = Policy::AgedRr.make();
            black_box(
                simulate(
                    &trace,
                    alloc.as_mut(),
                    MachineConfig::new(2),
                    SimOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_profile_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/profile");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let trace = bench_trace(1000, 11);
    for (name, opts) in [
        ("off", SimOptions::default()),
        ("on", SimOptions::with_profile()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut alloc = Policy::Rr.make();
                black_box(simulate(&trace, alloc.as_mut(), MachineConfig::new(4), opts).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/quantum");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let trace = bench_trace(1000, 13);
    for &q in &[1.0, 0.1, 0.01] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                black_box(
                    simulate_quantum_rr(&trace, MachineConfig::new(4), QuantumOptions::new(q))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_continuous_policy,
    bench_profile_recording,
    bench_quantum
);
criterion_main!(benches);

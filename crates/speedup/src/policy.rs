//! Processor-allocation policies for the speed-up curves model.

use crate::job::PhaseKind;

/// Observable state of an alive job handed to policies. Non-clairvoyant
/// policies (EQUI, LAPS) must ignore everything except arrival order;
/// clairvoyant baselines may use the rest.
#[derive(Debug, Clone, Copy)]
pub struct AliveCurveJob {
    /// Job id.
    pub id: u32,
    /// Arrival time.
    pub arrival: f64,
    /// Kind of the *current* phase (clairvoyant information in this model,
    /// since phase boundaries are not externally visible).
    pub current_kind: PhaseKind,
    /// Remaining work in the current phase (clairvoyant).
    pub remaining_phase: f64,
    /// Remaining work over all phases (clairvoyant).
    pub remaining_total: f64,
}

/// A processor-allocation policy: split `p_total` processors over the
/// alive jobs. Feasibility: `ρ_i ≥ 0`, `Σ ρ_i ≤ p_total` (no per-job cap
/// — parallel phases may absorb every processor).
pub trait ProcessorPolicy {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Fill `rho` (zeroed, same order as `alive`, which is arrival-sorted).
    fn allocate(&mut self, alive: &[AliveCurveJob], p_total: f64, rho: &mut [f64]);
}

/// EQUI — the speed-up-curves incarnation of Round Robin: every alive job
/// gets `P/n_t`, oblivious to phases. The paper's Section 1.2 cites that
/// this policy is O(1)-speed O(1)-competitive for ℓ1 \[13\] but **not**
/// for ℓ2 \[15\] in this model.
#[derive(Debug, Default, Clone, Copy)]
pub struct Equi;

impl ProcessorPolicy for Equi {
    fn name(&self) -> &'static str {
        "EQUI"
    }

    fn allocate(&mut self, alive: &[AliveCurveJob], p_total: f64, rho: &mut [f64]) {
        if alive.is_empty() {
            return;
        }
        rho.fill(p_total / alive.len() as f64);
    }
}

/// LAPS(β) for speed-up curves \[13\]: the `⌈βn⌉` latest-arrived jobs
/// share the processors equally; earlier jobs get zero.
#[derive(Debug, Clone, Copy)]
pub struct LapsCurves {
    /// Fraction of latest arrivals served, in `(0, 1]`.
    pub beta: f64,
}

impl LapsCurves {
    /// LAPS with the given β (clamped into `(0, 1]`).
    pub fn new(beta: f64) -> Self {
        LapsCurves {
            beta: beta.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

impl ProcessorPolicy for LapsCurves {
    fn name(&self) -> &'static str {
        "LAPS"
    }

    fn allocate(&mut self, alive: &[AliveCurveJob], p_total: f64, rho: &mut [f64]) {
        let n = alive.len();
        if n == 0 {
            return;
        }
        let k = ((self.beta * n as f64).ceil() as usize).clamp(1, n);
        let share = p_total / k as f64;
        for r in rho.iter_mut().skip(n - k) {
            *r = share;
        }
    }
}

/// The clairvoyant baseline: sequential phases run free, so give **all**
/// processors to the parallel-phase job with the least remaining total
/// work (SRPT on parallel work). On instances whose parallel phases are
/// fully parallelizable this concentration is exchange-argument optimal
/// for mean flow and near-optimal for ℓk.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyPar;

impl ProcessorPolicy for GreedyPar {
    fn name(&self) -> &'static str {
        "GreedyPar"
    }

    fn allocate(&mut self, alive: &[AliveCurveJob], p_total: f64, rho: &mut [f64]) {
        let mut best: Option<usize> = None;
        for (i, a) in alive.iter().enumerate() {
            if matches!(a.current_kind, PhaseKind::Par | PhaseKind::Capped { .. }) {
                match best {
                    None => best = Some(i),
                    Some(b) if a.remaining_total < alive[b].remaining_total => best = Some(i),
                    _ => {}
                }
            }
        }
        if let Some(i) = best {
            rho[i] = p_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(specs: &[(PhaseKind, f64)]) -> Vec<AliveCurveJob> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(kind, rem))| AliveCurveJob {
                id: i as u32,
                arrival: i as f64,
                current_kind: kind,
                remaining_phase: rem,
                remaining_total: rem,
            })
            .collect()
    }

    #[test]
    fn equi_splits_equally() {
        let a = alive(&[(PhaseKind::Par, 1.0), (PhaseKind::Seq, 5.0)]);
        let mut rho = vec![0.0; 2];
        Equi.allocate(&a, 4.0, &mut rho);
        assert_eq!(rho, vec![2.0, 2.0]);
    }

    #[test]
    fn laps_serves_latest() {
        let a = alive(&[
            (PhaseKind::Par, 1.0),
            (PhaseKind::Par, 1.0),
            (PhaseKind::Par, 1.0),
            (PhaseKind::Par, 1.0),
        ]);
        let mut rho = vec![0.0; 4];
        LapsCurves::new(0.5).allocate(&a, 2.0, &mut rho);
        assert_eq!(rho, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn greedypar_concentrates_on_least_remaining_parallel() {
        let a = alive(&[
            (PhaseKind::Seq, 0.5),
            (PhaseKind::Par, 3.0),
            (PhaseKind::Par, 2.0),
        ]);
        let mut rho = vec![0.0; 3];
        GreedyPar.allocate(&a, 8.0, &mut rho);
        assert_eq!(rho, vec![0.0, 0.0, 8.0]);
    }

    #[test]
    fn greedypar_idles_when_everything_is_sequential() {
        let a = alive(&[(PhaseKind::Seq, 1.0), (PhaseKind::Seq, 2.0)]);
        let mut rho = vec![0.0; 2];
        GreedyPar.allocate(&a, 8.0, &mut rho);
        assert_eq!(rho, vec![0.0, 0.0]);
    }
}

#![warn(missing_docs)]

//! # tf-speedup — arbitrary speed-up curves, where RR *fails*
//!
//! The paper's Section 1.2 contrasts its positive result with the
//! *arbitrary speed-up curves* setting: "in other scheduling environments
//! such as the arbitrary speed-up curves and broadcast settings, RR was
//! shown not to be O(1)-speed O(1)-competitive" for the ℓ2 norm \[15\],
//! while it *is* O(1)-speed O(1)-competitive for the ℓ1 norm there
//! \[13\]. Reproducing that contrast requires the other model, so this
//! crate implements it:
//!
//! * jobs are sequences of **phases**; a phase holds `work` and is either
//!   **parallelizable** (`Par`: progresses at rate `s·ρ` when allocated
//!   `ρ` processors of speed `s`) or **sequential** (`Seq`: progresses at
//!   rate `s` regardless of allocation — extra processors are wasted);
//! * a policy splits `P = m` processors over alive jobs at each instant;
//!   **EQUI** (= RR here) gives every alive job `P/n_t`, oblivious to
//!   phases; **LAPS(β)** favors the latest arrivals \[13\]; **GreedyPar**
//!   is the clairvoyant baseline that concentrates all processors on the
//!   parallel-phase job with least remaining work (sequential phases run
//!   free);
//! * [`families::seq_swarm`] is the instance family behind the negative
//!   result: a swarm of short sequential jobs keeps `n_t` large *at zero
//!   opportunity cost to the optimum* (sequential work needs no
//!   processors), so EQUI starves the parallel job by the full factor
//!   `n_t` — and extra speed only divides, never cancels, that factor.
//!   Experiment E15 measures exactly this: ℓ2 ratio growing linearly with
//!   the swarm size at *every* constant speed, while ℓ1 stays flat.

pub mod engine;
pub mod families;
pub mod job;
pub mod policy;

pub use engine::{simulate_speedup, SpeedupSchedule};
pub use job::{Phase, PhaseKind, SpeedupJob, SpeedupTrace};
pub use policy::{Equi, GreedyPar, LapsCurves, ProcessorPolicy};

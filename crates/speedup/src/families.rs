//! Instance families for the speed-up curves experiments.

use crate::job::{Phase, SpeedupTrace};

/// The **sequential swarm** — the family behind \[15\]'s negative result
/// for RR/EQUI on the ℓ2 norm (experiment E15).
///
/// One fully parallelizable job of work `par_work` arrives at `t = 0`,
/// together with a maintained *swarm* of `swarm` sequential jobs: each
/// sequential job has work `seq_len`, and a fresh batch of `swarm` of them
/// arrives every `seq_len` time units for `rounds` rounds, so about
/// `swarm` sequential jobs are alive at every moment of the horizon.
///
/// Why it kills EQUI but not the optimum:
/// * sequential jobs progress at machine speed **regardless of
///   allocation** — they cost the optimum *nothing* (GreedyPar gives them
///   zero processors and they finish exactly on time, flow `seq_len`);
/// * EQUI still hands every one of them an equal share, so the parallel
///   job receives only `P/(swarm+1)` — its flow inflates by a factor
///   `≈ swarm + 1`, and **extra speed only divides this factor, never
///   cancels it**, which is precisely why no O(1) speed rescues RR here,
///   in contrast to Theorem 1's standard setting.
///
/// Shrinking `seq_len` (with `rounds` scaled up to keep the horizon) sends
/// the swarm's own contribution to the ℓ2 norm to zero while preserving
/// the dilution, so the ℓ2 ratio grows linearly in `swarm`.
///
/// The `overlap` parameter hardens the family against resource
/// augmentation, mirroring how \[15\]'s lower bound picks a construction
/// *per speed*: batches arrive every `seq_len/overlap`, so at machine
/// speed `s ≤ overlap` roughly `overlap/s · swarm` sequential jobs are
/// alive at all times and the dilution of the parallel job never drops
/// below `≈ swarm` — extra speed divides the dilution but the instance
/// designer simply raises `overlap`.
pub fn seq_swarm(swarm: usize, seq_len: f64, par_work: f64, rounds: usize) -> SpeedupTrace {
    seq_swarm_overlapped(swarm, seq_len, par_work, rounds, 1)
}

/// [`seq_swarm`] with explicit batch overlap (see there).
pub fn seq_swarm_overlapped(
    swarm: usize,
    seq_len: f64,
    par_work: f64,
    rounds: usize,
    overlap: u32,
) -> SpeedupTrace {
    assert!(overlap >= 1);
    let period = seq_len / f64::from(overlap);
    let mut jobs: Vec<(f64, Vec<Phase>)> = Vec::with_capacity(1 + swarm * rounds);
    jobs.push((0.0, vec![Phase::par(par_work)]));
    for round in 0..rounds {
        let t = round as f64 * period;
        for _ in 0..swarm {
            jobs.push((t, vec![Phase::seq(seq_len)]));
        }
    }
    SpeedupTrace::new(jobs)
}

/// A balanced mixed workload: `n` jobs alternating `Par(w) → Seq(w) →
/// Par(w)` arriving every `gap` — a sanity family where EQUI, LAPS and
/// GreedyPar should all be within small constants (no adversarial
/// structure).
pub fn mixed_phases(n: usize, w: f64, gap: f64) -> SpeedupTrace {
    SpeedupTrace::new((0..n).map(|i| {
        (
            i as f64 * gap,
            vec![Phase::par(w), Phase::seq(w), Phase::par(w)],
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_speedup;
    use crate::policy::{Equi, GreedyPar};

    #[test]
    fn swarm_shape() {
        let t = seq_swarm(4, 2.0, 8.0, 3);
        assert_eq!(t.len(), 1 + 4 * 3);
        // First job is the parallel one.
        assert_eq!(t.jobs()[0].seq_work(), 0.0);
        assert_eq!(t.jobs()[1].seq_work(), 2.0);
    }

    #[test]
    fn swarm_dilutes_equi_by_the_predicted_factor() {
        // swarm=7, P=1, speed 1: EQUI gives the par job 1/8 of a processor
        // while the swarm persists → par flow ≈ 8·par_work. GreedyPar: par
        // flow = par_work.
        let swarm = 7;
        let par_work = 4.0;
        let t = seq_swarm(swarm, 1.0, par_work, 64);
        let e = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        let g = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
        let dilution = e.flow[0] / g.flow[0];
        assert!((g.flow[0] - par_work).abs() < 1e-9);
        assert!(
            (dilution - (swarm + 1) as f64).abs() < 1.0,
            "dilution {dilution}, expected ≈ {}",
            swarm + 1
        );
        // The swarm itself is indifferent: every seq job has flow seq_len
        // under both policies.
        for j in 1..t.len() {
            assert!((e.flow[j] - 1.0).abs() < 1e-9);
            assert!((g.flow[j] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extra_speed_only_divides_the_dilution() {
        // Overlap 4 keeps ≥ 15-ish sequential jobs alive for speeds ≤ 4.
        let t = seq_swarm_overlapped(15, 1.0, 4.0, 400, 4);
        let e2 = simulate_speedup(&t, &mut Equi, 1.0, 2.0);
        let g1 = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
        // At speed 2 the alive swarm is ≈ 2·15; EQUI's par rate is
        // ≈ 2/(30) → the par job is still ≈ 7-8× slower than the speed-1
        // clairvoyant baseline.
        let ratio = e2.flow[0] / g1.flow[0];
        assert!(ratio > 6.0, "{ratio}");
    }

    #[test]
    fn mixed_family_is_benign() {
        let t = mixed_phases(10, 1.0, 3.0);
        let e = simulate_speedup(&t, &mut Equi, 2.0, 1.0);
        let g = simulate_speedup(&t, &mut GreedyPar, 2.0, 1.0);
        let ratio = e.flow_norm(2.0) / g.flow_norm(2.0);
        assert!(ratio < 2.5, "{ratio}");
    }
}

//! Phased jobs for the speed-up curves model.

use serde::{Deserialize, Serialize};

/// Parallelizability of a phase — the speed-up curve `Γ(ρ)` in the
/// arbitrary-speedup model \[13\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Fully parallelizable: progresses at rate `s·ρ` with `ρ` processors
    /// of speed `s` (speed-up curve `Γ(ρ) = ρ`).
    Par,
    /// Sequential: progresses at rate `s` regardless of allocation
    /// (`Γ(ρ) = 1`); allocated processors are wasted.
    Seq,
    /// Limited parallelism: `Γ(ρ) = min(ρ, cap)` — the phase can exploit
    /// at most `cap` processors (Par is `cap = ∞`; unlike Seq, it
    /// requires allocation to progress at all).
    Capped {
        /// Maximum useful processor count (`> 0`).
        cap: f64,
    },
}

/// One phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Work in this phase (`> 0`).
    pub work: f64,
    /// Parallelizability.
    pub kind: PhaseKind,
}

impl Phase {
    /// A parallelizable phase.
    pub fn par(work: f64) -> Self {
        Phase {
            work,
            kind: PhaseKind::Par,
        }
    }

    /// A sequential phase.
    pub fn seq(work: f64) -> Self {
        Phase {
            work,
            kind: PhaseKind::Seq,
        }
    }

    /// A limited-parallelism phase (`Γ(ρ) = min(ρ, cap)`).
    pub fn capped(work: f64, cap: f64) -> Self {
        assert!(cap > 0.0 && cap.is_finite(), "bad parallelism cap {cap}");
        Phase {
            work,
            kind: PhaseKind::Capped { cap },
        }
    }
}

/// A job: arrival time plus an ordered list of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupJob {
    /// Job id (index in the trace).
    pub id: u32,
    /// Arrival time.
    pub arrival: f64,
    /// Phases, executed in order.
    pub phases: Vec<Phase>,
}

impl SpeedupJob {
    /// Total work across phases.
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work).sum()
    }

    /// Total sequential work (the part no allocation can accelerate
    /// beyond the machine speed).
    pub fn seq_work(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Seq)
            .map(|p| p.work)
            .sum()
    }
}

/// A validated instance in the speed-up curves model: jobs sorted by
/// arrival, ids dense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupTrace {
    jobs: Vec<SpeedupJob>,
}

impl SpeedupTrace {
    /// Build from `(arrival, phases)` pairs.
    ///
    /// # Panics
    /// If any phase has non-positive or non-finite work, a job has no
    /// phases, or an arrival is negative/non-finite.
    pub fn new(jobs: impl IntoIterator<Item = (f64, Vec<Phase>)>) -> Self {
        let mut v: Vec<SpeedupJob> = jobs
            .into_iter()
            .map(|(arrival, phases)| {
                assert!(
                    arrival.is_finite() && arrival >= 0.0,
                    "bad arrival {arrival}"
                );
                assert!(!phases.is_empty(), "job needs at least one phase");
                for p in &phases {
                    assert!(
                        p.work.is_finite() && p.work > 0.0,
                        "bad phase work {}",
                        p.work
                    );
                }
                SpeedupJob {
                    id: 0,
                    arrival,
                    phases,
                }
            })
            .collect();
        v.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        for (i, j) in v.iter_mut().enumerate() {
            j.id = i as u32;
        }
        SpeedupTrace { jobs: v }
    }

    /// The jobs, arrival-sorted.
    pub fn jobs(&self) -> &[SpeedupJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_aggregates() {
        let j = SpeedupJob {
            id: 0,
            arrival: 0.0,
            phases: vec![Phase::par(2.0), Phase::seq(3.0), Phase::par(1.0)],
        };
        assert_eq!(j.total_work(), 6.0);
        assert_eq!(j.seq_work(), 3.0);
    }

    #[test]
    fn trace_sorts_and_ids() {
        let t = SpeedupTrace::new([(2.0, vec![Phase::par(1.0)]), (0.0, vec![Phase::seq(1.0)])]);
        assert_eq!(t.jobs()[0].arrival, 0.0);
        assert_eq!(t.jobs()[0].id, 0);
        assert_eq!(t.jobs()[1].id, 1);
    }

    #[test]
    #[should_panic(expected = "bad phase work")]
    fn rejects_zero_work() {
        SpeedupTrace::new([(0.0, vec![Phase::par(0.0)])]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_phaseless_jobs() {
        SpeedupTrace::new([(0.0, vec![])]);
    }
}

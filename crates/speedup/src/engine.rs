//! Event-driven simulation for the speed-up curves model.
//!
//! Between events (arrivals, phase completions — which include job
//! completions) every phase progresses at a constant rate: `s·ρ_j` for
//! parallel phases, `s` for sequential ones. The engine advances
//! analytically to the earliest next event, so schedules are exact for
//! piecewise-constant policies (EQUI, LAPS, GreedyPar all are — their
//! decisions change only at events).

use crate::job::{PhaseKind, SpeedupTrace};
use crate::policy::{AliveCurveJob, ProcessorPolicy};

/// Output of a speed-up curves simulation.
#[derive(Debug, Clone)]
pub struct SpeedupSchedule {
    /// Policy name.
    pub policy: String,
    /// Processors `P` and speed `s` the run used.
    pub processors: f64,
    /// Machine speed.
    pub speed: f64,
    /// Completion time per job id.
    pub completion: Vec<f64>,
    /// Flow time per job id.
    pub flow: Vec<f64>,
    /// Engine events processed.
    pub events: u64,
}

impl SpeedupSchedule {
    /// `Σ_j F_j^k`.
    pub fn flow_power_sum(&self, k: f64) -> f64 {
        self.flow.iter().map(|&f| f.powf(k)).sum()
    }

    /// ℓk norm of the flow vector (`k = ∞` for max).
    pub fn flow_norm(&self, k: f64) -> f64 {
        if k.is_infinite() {
            self.flow.iter().fold(0.0, |a, &f| a.max(f))
        } else {
            self.flow_power_sum(k).powf(1.0 / k)
        }
    }
}

struct AliveState {
    job: usize,
    phase: usize,
    remaining_phase: f64,
    remaining_total: f64,
}

const REL_EPS: f64 = 1e-9;
const ABS_EPS: f64 = 1e-12;

/// Simulate `policy` on `trace` with `processors` processors of speed
/// `speed`.
///
/// # Panics
/// If the policy over-allocates processors beyond tolerance, or the
/// configuration is degenerate (`processors ≤ 0`, `speed ≤ 0`).
pub fn simulate_speedup(
    trace: &SpeedupTrace,
    policy: &mut dyn ProcessorPolicy,
    processors: f64,
    speed: f64,
) -> SpeedupSchedule {
    assert!(processors > 0.0 && processors.is_finite());
    assert!(speed > 0.0 && speed.is_finite());
    let n = trace.len();
    let jobs = trace.jobs();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];

    let mut alive: Vec<AliveState> = Vec::new();
    let mut next_arrival = 0usize;
    let mut time = 0.0f64;
    let mut events = 0u64;

    let mut views: Vec<AliveCurveJob> = Vec::new();
    let mut rho: Vec<f64> = Vec::new();

    loop {
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            let j = &jobs[next_arrival];
            alive.push(AliveState {
                job: next_arrival,
                phase: 0,
                remaining_phase: j.phases[0].work,
                remaining_total: j.total_work(),
            });
            next_arrival += 1;
            events += 1;
        }
        if alive.is_empty() {
            if next_arrival >= n {
                break;
            }
            time = jobs[next_arrival].arrival;
            continue;
        }

        views.clear();
        views.extend(alive.iter().map(|a| {
            let j = &jobs[a.job];
            AliveCurveJob {
                id: j.id,
                arrival: j.arrival,
                current_kind: j.phases[a.phase].kind,
                remaining_phase: a.remaining_phase,
                remaining_total: a.remaining_total,
            }
        }));
        rho.clear();
        rho.resize(alive.len(), 0.0);
        policy.allocate(&views, processors, &mut rho);
        let total: f64 = rho.iter().sum();
        assert!(
            total <= processors * (1.0 + REL_EPS) + ABS_EPS,
            "policy {} over-allocated: {total} > {processors}",
            policy.name()
        );
        assert!(
            rho.iter().all(|r| r.is_finite() && *r >= -ABS_EPS),
            "negative allocation"
        );

        // Rates per job and earliest event.
        let mut dt = f64::INFINITY;
        let mut arrival_snap = None;
        if next_arrival < n {
            let d = jobs[next_arrival].arrival - time;
            if d < dt {
                dt = d;
                arrival_snap = Some(jobs[next_arrival].arrival);
            }
        }
        let mut rates = Vec::with_capacity(alive.len());
        for (a, &r) in alive.iter().zip(&rho) {
            let kind = jobs[a.job].phases[a.phase].kind;
            let rate = match kind {
                PhaseKind::Par => speed * r.max(0.0),
                PhaseKind::Seq => speed,
                PhaseKind::Capped { cap } => speed * r.max(0.0).min(cap),
            };
            rates.push(rate);
            if rate > ABS_EPS {
                let d = a.remaining_phase / rate;
                if d < dt {
                    dt = d;
                    arrival_snap = None;
                }
            }
        }
        assert!(
            dt.is_finite(),
            "stalled: all parallel phases unallocated and no arrivals pending"
        );

        // Advance.
        for (a, &rate) in alive.iter_mut().zip(&rates) {
            let w = rate * dt;
            a.remaining_phase -= w;
            a.remaining_total -= w;
        }
        time = arrival_snap.unwrap_or(time + dt);
        events += 1;

        // Phase transitions and completions.
        let mut i = 0;
        while i < alive.len() {
            let a = &mut alive[i];
            let j = &jobs[a.job];
            if a.remaining_phase <= j.phases[a.phase].work * REL_EPS + ABS_EPS {
                if a.phase + 1 < j.phases.len() {
                    a.phase += 1;
                    a.remaining_phase = j.phases[a.phase].work;
                    i += 1;
                } else {
                    completion[a.job] = time;
                    flow[a.job] = time - j.arrival;
                    alive.remove(i);
                }
            } else {
                i += 1;
            }
        }
    }

    SpeedupSchedule {
        policy: policy.name().to_string(),
        processors,
        speed,
        completion,
        flow,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Phase;
    use crate::policy::{Equi, GreedyPar};

    #[test]
    fn single_parallel_job_uses_all_processors_under_equi() {
        let t = SpeedupTrace::new([(0.0, vec![Phase::par(8.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 4.0, 1.0);
        assert!((s.completion[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_phase_ignores_allocation() {
        // Seq work 3 at speed 1 takes 3, no matter how many processors.
        let t = SpeedupTrace::new([(0.0, vec![Phase::seq(3.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 64.0, 1.0);
        assert!((s.completion[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn speed_scales_both_kinds() {
        let t = SpeedupTrace::new([(0.0, vec![Phase::seq(3.0), Phase::par(4.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 2.0, 2.0);
        // Seq: 3/2; Par: 4/(2 procs × speed 2) = 1. Total 2.5.
        assert!((s.completion[0] - 2.5).abs() < 1e-9, "{}", s.completion[0]);
    }

    #[test]
    fn equi_dilutes_parallel_jobs_by_sequential_bystanders() {
        // One par job (work 4) + one seq job (work 100) on P=2, speed 1.
        // EQUI: par job gets 1 processor → completes at 4.
        let t = SpeedupTrace::new([(0.0, vec![Phase::par(4.0)]), (0.0, vec![Phase::seq(100.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 2.0, 1.0);
        assert!((s.completion[0] - 4.0).abs() < 1e-9);
        // GreedyPar: par job gets both processors → completes at 2, and
        // the seq job is unharmed (finishes at 100 either way).
        let g = simulate_speedup(&t, &mut GreedyPar, 2.0, 1.0);
        assert!((g.completion[0] - 2.0).abs() < 1e-9);
        assert!((g.completion[1] - 100.0).abs() < 1e-9);
        assert!((s.completion[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn phase_transitions_are_events() {
        // Par then Seq then Par, alone on P=1.
        let t = SpeedupTrace::new([(0.0, vec![Phase::par(1.0), Phase::seq(2.0), Phase::par(1.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        assert!((s.completion[0] - 4.0).abs() < 1e-9);
        assert!(s.events >= 3);
    }

    #[test]
    fn greedypar_orders_by_remaining_total() {
        let t = SpeedupTrace::new([(0.0, vec![Phase::par(3.0)]), (0.0, vec![Phase::par(1.0)])]);
        let s = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
        assert!((s.completion[1] - 1.0).abs() < 1e-9);
        assert!((s.completion[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capped_phase_limits_speedup() {
        // Capped at 2: with 8 processors the phase still runs at rate 2.
        let t = SpeedupTrace::new([(0.0, vec![Phase::capped(8.0, 2.0)])]);
        let s = simulate_speedup(&t, &mut Equi, 8.0, 1.0);
        assert!((s.completion[0] - 4.0).abs() < 1e-9, "{}", s.completion[0]);
        // With 1 processor it is the bottleneck instead.
        let s = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        assert!((s.completion[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn capped_needs_allocation_unlike_seq() {
        // GreedyPar considers capped phases schedulable work (they would
        // stall at zero allocation), so a lone capped job gets processors.
        let t = SpeedupTrace::new([(0.0, vec![Phase::capped(2.0, 1.0)])]);
        let s = simulate_speedup(&t, &mut GreedyPar, 4.0, 1.0);
        assert!((s.completion[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_mid_run() {
        let t = SpeedupTrace::new([(0.0, vec![Phase::par(2.0)]), (1.0, vec![Phase::par(2.0)])]);
        // EQUI, P=1: [0,1): job0 at rate 1 (alone), remaining 1.
        // [1,..): both at 1/2: job0 done at 3; job1 remaining 1 at t=3,
        // then alone at rate 1 → done at 4.
        let s = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        assert!((s.completion[0] - 3.0).abs() < 1e-9);
        assert!((s.completion[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let t = SpeedupTrace::new(std::iter::empty::<(f64, Vec<Phase>)>());
        let s = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        assert!(s.flow.is_empty());
        assert_eq!(s.flow_norm(2.0), 0.0);
    }
}

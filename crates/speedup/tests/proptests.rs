//! Property tests for the speed-up curves engine.

use proptest::prelude::*;
use tf_speedup::{simulate_speedup, Equi, GreedyPar, LapsCurves, Phase, SpeedupTrace};

fn arb_trace() -> impl Strategy<Value = SpeedupTrace> {
    let phase =
        (0.1f64..4.0, prop::bool::ANY)
            .prop_map(|(w, par)| if par { Phase::par(w) } else { Phase::seq(w) });
    prop::collection::vec((0.0f64..20.0, prop::collection::vec(phase, 1..4)), 1..20)
        .prop_map(SpeedupTrace::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job completes under every policy, never earlier than its
    /// physical minimum (par work / (P·s) + seq work / s, sequenced).
    #[test]
    fn all_jobs_complete_with_physical_minimum(t in arb_trace(),
                                               p in 0.5f64..4.0, s in 0.5f64..3.0) {
        for mk in 0..3 {
            let sched = match mk {
                0 => simulate_speedup(&t, &mut Equi, p, s),
                1 => simulate_speedup(&t, &mut GreedyPar, p, s),
                _ => simulate_speedup(&t, &mut LapsCurves::new(0.5), p, s),
            };
            for j in t.jobs() {
                let c = sched.completion[j.id as usize];
                prop_assert!(c.is_finite(), "job {} incomplete", j.id);
                let par_work = j.total_work() - j.seq_work();
                let min_flow = par_work / (p * s) + j.seq_work() / s;
                prop_assert!(
                    sched.flow[j.id as usize] >= min_flow - 1e-6,
                    "job {}: flow {} < physical min {min_flow}",
                    j.id, sched.flow[j.id as usize]
                );
            }
        }
    }

    /// More speed never hurts EQUI (its allocation is oblivious, so every
    /// phase progresses pointwise faster).
    #[test]
    fn equi_speed_monotone(t in arb_trace(), p in 0.5f64..4.0) {
        let slow = simulate_speedup(&t, &mut Equi, p, 1.0);
        let fast = simulate_speedup(&t, &mut Equi, p, 2.0);
        for j in 0..t.len() {
            prop_assert!(fast.completion[j] <= slow.completion[j] + 1e-6);
        }
    }

    /// A pure-sequential instance is policy-independent: every job's flow
    /// is exactly its total work / speed.
    #[test]
    fn sequential_jobs_are_policy_independent(arrivals in prop::collection::vec(0.0f64..10.0, 1..15),
                                              s in 0.5f64..3.0) {
        let t = SpeedupTrace::new(arrivals.iter().map(|&a| (a, vec![Phase::seq(2.0)])));
        for mk in 0..3 {
            let sched = match mk {
                0 => simulate_speedup(&t, &mut Equi, 1.0, s),
                1 => simulate_speedup(&t, &mut GreedyPar, 1.0, s),
                _ => simulate_speedup(&t, &mut LapsCurves::new(0.3), 1.0, s),
            };
            for j in 0..t.len() {
                prop_assert!((sched.flow[j] - 2.0 / s).abs() < 1e-9);
            }
        }
    }

    /// GreedyPar dominates EQUI on single-phase parallel instances for
    /// total flow (it is SRPT there, EQUI is RR on one machine of speed
    /// P·s — SRPT optimality).
    #[test]
    fn greedypar_beats_equi_on_parallel_work(works in prop::collection::vec(0.2f64..5.0, 1..12)) {
        let t = SpeedupTrace::new(works.iter().map(|&w| (0.0, vec![Phase::par(w)])));
        let e = simulate_speedup(&t, &mut Equi, 2.0, 1.0);
        let g = simulate_speedup(&t, &mut GreedyPar, 2.0, 1.0);
        let sum = |s: &tf_speedup::SpeedupSchedule| s.flow.iter().sum::<f64>();
        prop_assert!(sum(&g) <= sum(&e) + 1e-6);
    }
}

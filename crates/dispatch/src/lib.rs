#![warn(missing_docs)]

//! # tf-dispatch — immediate dispatch, no migration
//!
//! The paper's model lets jobs migrate freely (fractional machine shares).
//! Its related work studies the harsher *non-migratory* regime: Awerbuch–
//! Azar–Leonardi–Regev \[3\] minimize flow time without migration, and
//! Avrahami–Azar \[2\] with **immediate dispatch** — each job is
//! irrevocably routed to one machine the moment it arrives, and machines
//! never exchange work. Real cluster front-ends work this way, so this
//! crate measures what RR's guarantees cost when migration is turned off
//! (experiment E14).
//!
//! Model: a [`DispatchRule`] routes each arrival online (it may observe
//! per-machine *backlog*, which is policy-independent on work-conserving
//! machines, but not the future); each machine then runs a single-machine
//! [`tf_policies::Policy`] on its own queue at speed `s`.

mod rules;
mod sim;

pub use rules::DispatchRule;
pub use sim::{simulate_dispatch, DispatchOutcome};

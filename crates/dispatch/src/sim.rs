//! Two-phase non-migratory simulation: route online, then run each
//! machine's queue as an independent single-machine instance.

use crate::rules::DispatchRule;
use tf_policies::Policy;
use tf_simcore::{
    simulate, MachineConfig, Schedule, SimError, SimOptions, SimStats, Trace, TraceBuilder,
};

/// Result of a dispatch simulation.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// Merged schedule over the original trace (no profile — the
    /// per-machine profiles live in [`DispatchOutcome::per_machine`]).
    pub schedule: Schedule,
    /// `assignment[j]` = machine that got job `j` (original trace ids).
    pub assignment: Vec<usize>,
    /// Per-machine single-machine schedules (indexed by the sub-trace the
    /// machine saw; use `assignment` + arrival order to map back).
    pub per_machine: Vec<Schedule>,
}

/// Simulate immediate dispatch: route each arrival with `rule`, then run
/// `policy` independently on every machine at speed `speed`.
///
/// Backlogs exposed to the rule are exact for any work-conserving
/// single-machine policy (all registry policies qualify on one machine):
/// backlog evolves as `max(0, b − s·Δt) + p` on each arrival.
pub fn simulate_dispatch(
    trace: &Trace,
    rule: DispatchRule,
    policy: Policy,
    m: usize,
    speed: f64,
) -> Result<DispatchOutcome, SimError> {
    MachineConfig::with_speed(m, speed).validate()?;
    let n = trace.len();

    // Phase 1: online routing with exact backlog tracking.
    let mut assignment = vec![0usize; n];
    let mut backlog = vec![0.0f64; m];
    let mut last_t = 0.0f64;
    for (idx, j) in trace.jobs().iter().enumerate() {
        let dt = j.arrival - last_t;
        for b in backlog.iter_mut() {
            *b = (*b - dt * speed).max(0.0);
        }
        last_t = j.arrival;
        let target = rule.route(idx, &backlog);
        assignment[j.id as usize] = target;
        backlog[target] += j.size;
    }

    // Phase 2: independent single-machine runs.
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];
    let mut per_machine = Vec::with_capacity(m);
    let mut events = 0u64;
    for machine in 0..m {
        let mut sub = TraceBuilder::new();
        let mut ids: Vec<u32> = Vec::new();
        for j in trace.jobs() {
            if assignment[j.id as usize] == machine {
                sub.push_weighted(j.arrival, j.size, j.weight);
                ids.push(j.id);
            }
        }
        let sub = sub.build()?;
        let mut alloc = policy.make();
        let sched = simulate(
            &sub,
            alloc.as_mut(),
            MachineConfig::with_speed(1, speed),
            SimOptions::default(),
        )?;
        events += sched.events;
        // Sub-trace sorting is stable on (arrival, insertion) and we pushed
        // in trace order, so sub job i corresponds to ids[i].
        for (sub_id, &orig) in ids.iter().enumerate() {
            completion[orig as usize] = sched.completion[sub_id];
            flow[orig as usize] = sched.flow[sub_id];
        }
        per_machine.push(sched);
    }

    let schedule = Schedule {
        policy: format!("dispatch:{}/{}", rule.label(), policy),
        cfg: MachineConfig::with_speed(m, speed),
        completion,
        flow,
        profile: None,
        events,
        stats: SimStats::default(),
    };
    Ok(DispatchOutcome {
        schedule,
        assignment,
        per_machine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn cyclic_two_machines_runs_in_parallel() {
        let t = trace(&[(0.0, 2.0), (0.0, 2.0)]);
        let out = simulate_dispatch(&t, DispatchRule::Cyclic, Policy::Fcfs, 2, 1.0).unwrap();
        assert_eq!(out.assignment, vec![0, 1]);
        assert!((out.schedule.completion[0] - 2.0).abs() < 1e-9);
        assert!((out.schedule.completion[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_work_avoids_the_loaded_machine() {
        // Big job to machine 0; next two arrivals go to machine 1 then 0.
        let t = trace(&[(0.0, 10.0), (1.0, 1.0), (2.0, 1.0)]);
        let out = simulate_dispatch(&t, DispatchRule::LeastWork, Policy::Srpt, 2, 1.0).unwrap();
        assert_eq!(out.assignment[0], 0);
        assert_eq!(out.assignment[1], 1);
        // At t=2: backlog0 = 8, backlog1 = 0 → machine 1 again.
        assert_eq!(out.assignment[2], 1);
    }

    #[test]
    fn backlog_drains_at_speed() {
        // Speed 2: a size-4 job is gone after 2 time units; next arrival at
        // t=2 should see equal (zero) backlogs and go to machine 0.
        let t = trace(&[(0.0, 4.0), (2.0, 1.0)]);
        let out = simulate_dispatch(&t, DispatchRule::LeastWork, Policy::Fcfs, 2, 2.0).unwrap();
        assert_eq!(out.assignment[1], 0);
    }

    #[test]
    fn all_jobs_complete_under_every_rule_and_policy() {
        let t = trace(&[(0.0, 3.0), (0.5, 1.0), (1.0, 2.0), (1.0, 1.0), (4.0, 2.5)]);
        for rule in [
            DispatchRule::Cyclic,
            DispatchRule::LeastWork,
            DispatchRule::Random { seed: 3 },
        ] {
            for p in [Policy::Rr, Policy::Srpt, Policy::Setf, Policy::Fcfs] {
                let out = simulate_dispatch(&t, rule, p, 2, 1.0).unwrap();
                for (j, c) in out.schedule.completion.iter().enumerate() {
                    assert!(c.is_finite(), "{rule:?}/{p}: job {j} incomplete");
                }
                // Non-migratory can never beat a dedicated machine per job.
                for j in t.jobs() {
                    assert!(
                        out.schedule.flow[j.id as usize] >= j.size - 1e-9,
                        "{rule:?}/{p}"
                    );
                }
            }
        }
    }

    #[test]
    fn migration_can_beat_dispatch() {
        // Two big jobs then nothing: migratory RR on 2 machines finishes
        // both at t=4; cyclic dispatch does the same here, but a pathological
        // cyclic case: three jobs, two machines — job 2 queues behind job 0
        // while machine 1 idles after finishing job 1... craft it:
        let t = trace(&[(0.0, 4.0), (0.0, 1.0), (1.0, 1.0)]);
        // Cyclic: job2 → machine 0 (behind the size-4 job); machine 1 idle
        // from t=1.
        let out = simulate_dispatch(&t, DispatchRule::Cyclic, Policy::Fcfs, 2, 1.0).unwrap();
        assert_eq!(out.assignment[2], 0);
        assert!(out.schedule.flow[2] > 3.0);
        // Least-work routes it to the idle machine instead.
        let lw = simulate_dispatch(&t, DispatchRule::LeastWork, Policy::Fcfs, 2, 1.0).unwrap();
        assert!((lw.schedule.flow[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_machine_dispatch_equals_plain_simulation() {
        let t = trace(&[(0.0, 2.0), (0.5, 1.0), (2.0, 3.0)]);
        let out = simulate_dispatch(&t, DispatchRule::LeastWork, Policy::Srpt, 1, 1.5).unwrap();
        let mut srpt = Policy::Srpt.make();
        let direct = simulate(
            &t,
            srpt.as_mut(),
            MachineConfig::with_speed(1, 1.5),
            SimOptions::default(),
        )
        .unwrap();
        for j in 0..t.len() {
            assert!((out.schedule.completion[j] - direct.completion[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_config() {
        let t = trace(&[(0.0, 1.0)]);
        assert!(simulate_dispatch(&t, DispatchRule::Cyclic, Policy::Rr, 0, 1.0).is_err());
    }
}

//! Online dispatch rules: which machine gets each arriving job.

use serde::{Deserialize, Serialize};

/// An online routing rule. Rules may use per-machine *backlog* (pending
/// work), which is the same for every work-conserving per-machine policy,
/// but nothing about the future.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DispatchRule {
    /// Cyclic: job `i` goes to machine `i mod m` (the classic front-end).
    Cyclic,
    /// Join the machine with the least pending work at the arrival instant
    /// (greedy load balancing — the \[2\]-style volume rule). Ties go to
    /// the lowest machine index.
    LeastWork,
    /// Pseudo-random uniform routing from a seeded hash of the job id —
    /// the "power of one random choice" baseline.
    Random {
        /// Hash seed; same seed ⇒ same assignment.
        seed: u64,
    },
}

impl DispatchRule {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            DispatchRule::Cyclic => "cyclic".into(),
            DispatchRule::LeastWork => "least-work".into(),
            DispatchRule::Random { .. } => "random".into(),
        }
    }

    /// Route one arrival. `backlogs[i]` is machine `i`'s pending work at
    /// the arrival instant; `job_index` is the arrival's position in the
    /// trace.
    pub fn route(&self, job_index: usize, backlogs: &[f64]) -> usize {
        match *self {
            DispatchRule::Cyclic => job_index % backlogs.len(),
            DispatchRule::LeastWork => {
                let mut best = 0usize;
                for (i, &b) in backlogs.iter().enumerate() {
                    if b < backlogs[best] {
                        best = i;
                    }
                }
                best
            }
            DispatchRule::Random { seed } => {
                // splitmix64 on (seed, index): deterministic, well mixed.
                let mut z = seed ^ (job_index as u64).wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z % backlogs.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_wraps() {
        let b = [0.0; 3];
        let r = DispatchRule::Cyclic;
        assert_eq!(r.route(0, &b), 0);
        assert_eq!(r.route(4, &b), 1);
        assert_eq!(r.route(5, &b), 2);
    }

    #[test]
    fn least_work_picks_minimum_with_low_index_ties() {
        let r = DispatchRule::LeastWork;
        assert_eq!(r.route(9, &[3.0, 1.0, 2.0]), 1);
        assert_eq!(r.route(9, &[1.0, 1.0, 2.0]), 0);
    }

    #[test]
    fn random_is_deterministic_and_spread() {
        let r = DispatchRule::Random { seed: 7 };
        let b = [0.0; 4];
        let a: Vec<usize> = (0..100).map(|i| r.route(i, &b)).collect();
        let again: Vec<usize> = (0..100).map(|i| r.route(i, &b)).collect();
        assert_eq!(a, again);
        // All machines used.
        for m in 0..4 {
            assert!(a.contains(&m), "machine {m} never chosen");
        }
        // Different seed, different stream.
        let other: Vec<usize> = (0..100)
            .map(|i| DispatchRule::Random { seed: 8 }.route(i, &b))
            .collect();
        assert_ne!(a, other);
    }
}

//! Property tests for immediate dispatch.

use proptest::prelude::*;
use tf_dispatch::{simulate_dispatch, DispatchRule};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.0f64..30.0, 0.1f64..8.0), 1..30)
        .prop_map(|pairs| Trace::from_pairs(pairs).expect("valid jobs"))
}

fn arb_rule() -> impl Strategy<Value = DispatchRule> {
    prop_oneof![
        Just(DispatchRule::Cyclic),
        Just(DispatchRule::LeastWork),
        (0u64..1000).prop_map(|seed| DispatchRule::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every job completes exactly once, on a single machine, with flow at
    /// least its dedicated-machine minimum.
    #[test]
    fn dispatch_is_complete_and_feasible(t in arb_trace(), rule in arb_rule(),
                                         m in 1usize..5, s in 0.5f64..3.0) {
        let out = simulate_dispatch(&t, rule, Policy::Rr, m, s).unwrap();
        prop_assert_eq!(out.assignment.len(), t.len());
        for j in t.jobs() {
            let c = out.schedule.completion[j.id as usize];
            prop_assert!(c.is_finite());
            prop_assert!(c >= j.arrival + j.size / s - 1e-9);
            prop_assert!(out.assignment[j.id as usize] < m);
        }
        // Per-machine job counts sum to n.
        let total: usize = out.per_machine.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, t.len());
    }

    /// On one machine, dispatch with any rule is identical to the plain
    /// single-machine simulation.
    #[test]
    fn one_machine_dispatch_is_plain(t in arb_trace(), rule in arb_rule()) {
        let out = simulate_dispatch(&t, rule, Policy::Srpt, 1, 1.0).unwrap();
        let mut srpt = Policy::Srpt.make();
        let plain = simulate(&t, srpt.as_mut(), MachineConfig::new(1), SimOptions::default()).unwrap();
        for j in 0..t.len() {
            prop_assert!((out.schedule.completion[j] - plain.completion[j]).abs() < 1e-9);
        }
    }

    /// Least-work routing never leaves one machine idle while another has
    /// two or more queued jobs *at dispatch time*: the chosen machine
    /// always has the minimum backlog.
    #[test]
    fn least_work_is_greedy_minimal(t in arb_trace(), m in 2usize..4) {
        let out = simulate_dispatch(&t, DispatchRule::LeastWork, Policy::Fcfs, m, 1.0).unwrap();
        // Recompute backlogs independently and verify each choice.
        let mut backlog = vec![0.0f64; m];
        let mut last = 0.0;
        for j in t.jobs() {
            let dt = j.arrival - last;
            for b in backlog.iter_mut() {
                *b = (*b - dt).max(0.0);
            }
            last = j.arrival;
            let chosen = out.assignment[j.id as usize];
            let min = backlog.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(backlog[chosen] <= min + 1e-9);
            backlog[chosen] += j.size;
        }
    }
}

//! Property-based tests for the simulation engine: invariants that must
//! hold for every trace, machine count, and speed.

use proptest::prelude::*;
use tf_simcore::mcnaughton::{delivered_work, verify_assignment, wrap_around};
use tf_simcore::quantum::{simulate_quantum_rr, QuantumOptions};
use tf_simcore::validate::validate_schedule;
use tf_simcore::{simulate, AliveJob, MachineConfig, RateAllocator, SimOptions, Trace};

/// Inline RR (the policies crate depends on simcore, so tests here keep
/// their own copy).
struct Rr;
impl RateAllocator for Rr {
    fn name(&self) -> &'static str {
        "RR"
    }
    fn allocate(&mut self, _: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
        rates.fill(share);
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.0f64..50.0, 0.01f64..20.0), 1..40)
        .prop_map(|pairs| Trace::from_pairs(pairs).expect("valid jobs"))
}

fn arb_cfg() -> impl Strategy<Value = MachineConfig> {
    (1usize..6, 0.25f64..8.0).prop_map(|(m, s)| MachineConfig::with_speed(m, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every job completes, flow is positive and at least size/speed, and
    /// the profile conserves work exactly.
    #[test]
    fn rr_schedule_is_valid((t, cfg) in (arb_trace(), arb_cfg())) {
        let s = simulate(&t, &mut Rr, cfg, SimOptions::with_profile()).unwrap();
        let rep = validate_schedule(&t, &s, 1e-6);
        prop_assert!(rep.ok(), "{:?}", rep.issues);
    }

    /// Doubling the speed never increases any completion time under RR
    /// (RR's alive sets shrink pointwise with more speed).
    #[test]
    fn rr_speed_monotonicity(t in arb_trace(), m in 1usize..4, s in 0.5f64..4.0) {
        let slow = simulate(&t, &mut Rr, MachineConfig::with_speed(m, s), SimOptions::default()).unwrap();
        let fast = simulate(&t, &mut Rr, MachineConfig::with_speed(m, 2.0 * s), SimOptions::default()).unwrap();
        for j in 0..t.len() {
            prop_assert!(fast.completion[j] <= slow.completion[j] + 1e-6,
                "job {j}: fast {} > slow {}", fast.completion[j], slow.completion[j]);
        }
    }

    /// Jobs with identical arrival and size finish at the same time under RR
    /// (instantaneous fairness implies symmetric treatment).
    #[test]
    fn rr_treats_twins_identically(arr in 0.0f64..10.0, size in 0.1f64..10.0,
                                    extra in prop::collection::vec((0.0f64..20.0, 0.1f64..10.0), 0..10),
                                    m in 1usize..4) {
        let mut pairs = vec![(arr, size), (arr, size)];
        pairs.extend(extra);
        let t = Trace::from_pairs(pairs).unwrap();
        // Find the two twins in the sorted trace: they are adjacent with the
        // same (arrival, size); locate by matching values.
        let twins: Vec<u32> = t.jobs().iter()
            .filter(|j| j.arrival == arr && j.size == size)
            .map(|j| j.id)
            .collect();
        let s = simulate(&t, &mut Rr, MachineConfig::new(m), SimOptions::default()).unwrap();
        // All twins complete together (there may be >2 if extra collided —
        // then they are all symmetric too).
        for w in twins.windows(2) {
            prop_assert!((s.completion[w[0] as usize] - s.completion[w[1] as usize]).abs() < 1e-6);
        }
    }

    /// The engine's exact RR dominates (is dominated by) quantum RR in the
    /// limit: at a tiny quantum the total flows agree within a tolerance
    /// scaled by the number of jobs.
    #[test]
    fn quantum_rr_converges(t in arb_trace(), m in 1usize..3) {
        let cfg = MachineConfig::new(m);
        let ideal = simulate(&t, &mut Rr, cfg, SimOptions::default()).unwrap();
        let q = simulate_quantum_rr(&t, cfg, QuantumOptions::new(1e-3)).unwrap();
        let n = t.len() as f64;
        // Per-job completion error under quantum RR is O(n·q).
        let tol = 1e-3 * n * (n + 2.0);
        for j in 0..t.len() {
            prop_assert!((ideal.completion[j] - q.completion[j]).abs() <= tol,
                "job {j}: ideal {} vs quantum {}", ideal.completion[j], q.completion[j]);
        }
    }

    /// Every recorded RR segment is realizable on physical machines via
    /// McNaughton wrap-around, delivering exactly rate·duration work.
    #[test]
    fn rr_segments_are_realizable((t, cfg) in (arb_trace(), arb_cfg())) {
        let s = simulate(&t, &mut Rr, cfg, SimOptions::with_profile()).unwrap();
        let p = s.profile.unwrap();
        for seg in p.segments() {
            let a = wrap_around(seg, cfg.m, cfg.speed).expect("feasible segment");
            verify_assignment(seg, &a).unwrap();
            let w = delivered_work(&a, cfg.speed);
            for &(id, r) in seg.rates {
                let got = w.get(&id).copied().unwrap_or(0.0);
                prop_assert!((got - r * seg.duration()).abs() < 1e-6);
            }
        }
    }

    /// Total flow of RR is invariant under relabeling (building the trace
    /// from a shuffled pair list gives the same multiset of flows).
    #[test]
    fn rr_flow_is_permutation_invariant(mut pairs in prop::collection::vec((0.0f64..20.0, 0.1f64..5.0), 1..20)) {
        let t1 = Trace::from_pairs(pairs.clone()).unwrap();
        pairs.reverse();
        let t2 = Trace::from_pairs(pairs).unwrap();
        let cfg = MachineConfig::new(2);
        let s1 = simulate(&t1, &mut Rr, cfg, SimOptions::default()).unwrap();
        let s2 = simulate(&t2, &mut Rr, cfg, SimOptions::default()).unwrap();
        let mut f1 = s1.flow.clone();
        let mut f2 = s2.flow.clone();
        f1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        f2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}

//! Numerical and structural stress tests: extreme size ratios, massive
//! simultaneous arrivals, tiny speeds — the places event-driven engines
//! quietly lose precision.

use tf_simcore::validate::validate_schedule;
use tf_simcore::{simulate, AliveJob, MachineConfig, RateAllocator, SimOptions, Trace};

struct Rr;
impl RateAllocator for Rr {
    fn name(&self) -> &'static str {
        "RR"
    }
    fn allocate(&mut self, _: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        rates.fill(cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0));
    }
}

#[test]
fn extreme_size_ratio() {
    // 12 orders of magnitude between jobs sharing a machine.
    let t = Trace::from_pairs([(0.0, 1e-6), (0.0, 1e6)]).unwrap();
    let s = simulate(
        &t,
        &mut Rr,
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    // Tiny job finishes at 2e-6 (shared), giant at ~1e6 + 1e-6.
    assert!((s.completion[0] - 2e-6).abs() < 1e-12);
    assert!((s.completion[1] - (1e6 + 1e-6)).abs() < 1e-3);
    let rep = validate_schedule(&t, &s, 1e-6);
    assert!(rep.ok(), "{:?}", rep.issues);
}

#[test]
fn thousand_simultaneous_jobs() {
    let t = Trace::from_pairs(std::iter::repeat_n((0.0, 1.0), 1000)).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    for c in &s.completion {
        assert!((c - 1000.0).abs() < 1e-6, "{c}");
    }
    assert!(s.events < 5000, "event blow-up: {}", s.events);
}

#[test]
fn long_chain_of_overlapping_arrivals() {
    // 2000 jobs arriving in a dense ramp: exercises repeated re-allocation
    // without accumulating drift in remaining-work bookkeeping.
    let t = Trace::from_pairs((0..2000).map(|i| (i as f64 * 0.25, 1.0))).unwrap();
    let s = simulate(
        &t,
        &mut Rr,
        MachineConfig::with_speed(2, 2.1),
        SimOptions::with_profile(),
    )
    .unwrap();
    let p = s.profile.as_ref().unwrap();
    assert!((p.total_work() - t.total_size()).abs() < 1e-4 * t.total_size());
    let rep = validate_schedule(&t, &s, 1e-5);
    assert!(
        rep.ok(),
        "{:?}",
        rep.issues.iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn tiny_speed_scales_exactly() {
    let t = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0)]).unwrap();
    let s = simulate(
        &t,
        &mut Rr,
        MachineConfig::with_speed(1, 1e-6),
        SimOptions::default(),
    )
    .unwrap();
    // Same shape as speed 1 (completions 2 and 3), scaled by 1e6.
    assert!((s.completion[0] - 2e6).abs() < 1.0);
    assert!((s.completion[1] - 3e6).abs() < 1.0);
}

#[test]
fn far_future_arrival_after_long_idle() {
    let t = Trace::from_pairs([(0.0, 1.0), (1e9, 1.0)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    assert!((s.completion[1] - (1e9 + 1.0)).abs() < 1e-3);
}

#[test]
fn near_coincident_arrivals_stay_ordered() {
    // Arrivals separated by 1 ulp-ish gaps must not confuse admission.
    let base = 1.0f64;
    let eps = f64::EPSILON * 4.0;
    let t = Trace::from_pairs([(base, 1.0), (base + eps, 1.0), (base + 2.0 * eps, 1.0)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    for c in &s.completion {
        assert!(c.is_finite());
        assert!((c - (base + 3.0)).abs() < 1e-6);
    }
}

#[test]
fn profile_segments_are_bounded_by_events() {
    let t = Trace::from_pairs((0..500).map(|i| (i as f64 * 0.5, 0.75))).unwrap();
    let s = simulate(
        &t,
        &mut Rr,
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    let p = s.profile.as_ref().unwrap();
    assert!(p.len() as u64 <= s.events);
    // Contiguity within busy periods.
    for (a, b) in p.segments().zip(p.segments().skip(1)) {
        assert!(b.t0 >= a.t1 - 1e-9);
    }
}

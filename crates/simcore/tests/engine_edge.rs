//! Engine edge cases: degenerate job sizes, exact event ties, abusive
//! review hints, event-budget accounting, and the arrival-snap profile
//! stretch. These pin behaviours the unit tests exercise only implicitly.

use tf_simcore::{
    simulate, AliveJob, MachineConfig, RateAllocator, SimError, SimOptions, Trace, ABS_EPS,
};

/// Processor sharing (ideal RR): the paper's policy, reimplemented locally
/// so these tests don't depend on the policies crate.
struct Rr;

impl RateAllocator for Rr {
    fn name(&self) -> &'static str {
        "RR"
    }
    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let share = (cfg.total_cap() / alive.len() as f64).min(cfg.job_cap());
        rates.fill(share);
    }
}

/// A policy that always asks to be reviewed "now" — the degenerate hint
/// the engine must clamp to a minimal positive advance.
struct ZeroReview;

impl RateAllocator for ZeroReview {
    fn name(&self) -> &'static str {
        "ZeroReview"
    }
    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let share = (cfg.total_cap() / alive.len() as f64).min(cfg.job_cap());
        rates.fill(share);
    }
    fn review_in(&self, _now: f64, _alive: &[AliveJob], _cfg: &MachineConfig) -> Option<f64> {
        Some(0.0)
    }
}

/// Like [`ZeroReview`] but only for the first call — afterwards it behaves
/// event-driven, so the run must succeed after one clamped micro-step.
struct ZeroReviewOnce {
    fired: std::cell::Cell<bool>,
}

impl RateAllocator for ZeroReviewOnce {
    fn name(&self) -> &'static str {
        "ZeroReviewOnce"
    }
    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let share = (cfg.total_cap() / alive.len() as f64).min(cfg.job_cap());
        rates.fill(share);
    }
    fn review_in(&self, _now: f64, _alive: &[AliveJob], _cfg: &MachineConfig) -> Option<f64> {
        if self.fired.replace(true) {
            None
        } else {
            Some(0.0)
        }
    }
    fn reset(&mut self) {
        self.fired.set(false);
    }
}

#[test]
fn zero_size_jobs_are_rejected_at_trace_construction() {
    assert!(matches!(
        Trace::from_pairs([(0.0, 0.0)]),
        Err(SimError::BadJobSize { .. })
    ));
    assert!(matches!(
        Trace::from_pairs([(0.0, 1.0), (1.0, -2.0)]),
        Err(SimError::BadJobSize { .. })
    ));
}

#[test]
fn tiny_jobs_complete_without_event_blowup() {
    // Sizes near ABS_EPS stress the completion threshold
    // `remaining ≤ size·REL_EPS + ABS_EPS`: each job must finish in O(1)
    // events, not spin the zero-step guard.
    let t = Trace::from_pairs([(0.0, 1e-9), (0.0, 1.0), (0.5, 1e-12)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    assert!(s.completion.iter().all(|c| c.is_finite()));
    assert!(s.flow.iter().all(|&f| f >= 0.0));
    assert!(s.events < 64, "tiny jobs caused {} events", s.events);
}

#[test]
fn exact_completion_arrival_tie_is_one_step() {
    // Job 0 completes at t=2.0 exactly when job 1 arrives: the engine
    // takes the tied event in one step, admits the arrival at the snapped
    // instant, and never runs both jobs concurrently.
    let t = Trace::from_pairs([(0.0, 2.0), (2.0, 1.0)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    assert_eq!(s.completion[0], 2.0);
    assert_eq!(s.completion[1], 3.0);
    assert_eq!(s.flow, vec![2.0, 1.0]);
    assert_eq!(s.stats.peak_alive, 1, "jobs overlapped on an exact tie");
}

#[test]
fn simultaneous_completions_resolve_in_one_compaction() {
    // Four identical jobs under RR all hit zero remaining at once.
    let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
    for c in &s.completion {
        assert!((c - 4.0).abs() < 1e-9, "{:?}", s.completion);
    }
    // 4 admissions + 1 shared completion step.
    assert_eq!(s.stats.jobs_admitted, 4);
    assert_eq!(s.stats.completion_steps, 1);
}

#[test]
fn zero_review_hint_is_clamped_not_spun() {
    // A policy demanding review "now" forever cannot make the engine hang:
    // each step is clamped to a positive advance and the event budget
    // eventually trips deterministically.
    let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
    let r = simulate(
        &t,
        &mut ZeroReview,
        MachineConfig::new(1),
        SimOptions {
            max_events: Some(500),
            ..Default::default()
        },
    );
    assert!(
        matches!(r, Err(SimError::EventBudgetExhausted { .. })),
        "{r:?}"
    );
}

#[test]
fn one_zero_review_hint_costs_one_micro_step() {
    let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
    let mut p = ZeroReviewOnce {
        fired: std::cell::Cell::new(false),
    };
    let s = simulate(&t, &mut p, MachineConfig::new(1), SimOptions::default()).unwrap();
    assert!((s.completion[0] - 1.0).abs() < 1e-9);
    assert_eq!(s.stats.review_steps, 1);
    assert_eq!(s.stats.completion_steps, 1);
}

#[test]
fn events_equal_admissions_plus_steps() {
    // `Schedule::events` must reconcile exactly with the SimStats
    // breakdown: every event is either an admission or a step.
    let t = Trace::from_pairs([(0.0, 2.0), (0.5, 1.0), (1.0, 3.0), (4.0, 0.5)]).unwrap();
    let s = simulate(&t, &mut Rr, MachineConfig::new(2), SimOptions::default()).unwrap();
    assert_eq!(s.events, s.stats.jobs_admitted + s.stats.steps());
    assert_eq!(s.stats.jobs_admitted, 4);
    assert_eq!(s.stats.peak_alive, 3);
    assert_eq!(s.stats.adaptive_steps, 0);
    assert_eq!(s.stats.review_steps, 0);
}

#[test]
fn event_budget_counts_admissions() {
    // A budget smaller than the job count trips during admission, not
    // after: the returned count must exceed the budget by at most the
    // admissions of the current batch plus the tripping step.
    let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let r = simulate(
        &t,
        &mut Rr,
        MachineConfig::new(1),
        SimOptions {
            max_events: Some(2),
            ..Default::default()
        },
    );
    match r {
        Err(SimError::EventBudgetExhausted { events }) => assert_eq!(events, 4),
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

/// Satellite (c): the arrival-snap path. Arrivals at instants that are
/// floating-point near-ties with completion times force `time = at`
/// snapping with a non-zero (but noise-sized) stretch of the last profile
/// segment. Total recorded work must still equal the trace's total size —
/// the stretch may only ever absorb rounding noise, not real work.
#[test]
fn arrival_snap_profile_accounts_all_work() {
    // 0.1 is not representable: accumulated completions drift by ulps
    // from the arrivals at k·0.1, creating adversarial near-ties.
    let mut jobs = Vec::new();
    for i in 0..50 {
        jobs.push((0.1 * i as f64, 0.1));
        if i % 3 == 0 {
            jobs.push((0.1 * i as f64 + 1e-13, 0.05));
        }
    }
    let t = Trace::from_pairs(jobs).unwrap();
    let s = simulate(
        &t,
        &mut Rr,
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    let p = s.profile.as_ref().unwrap();
    let recorded = p.total_work();
    let expected = t.total_size();
    assert!(
        (recorded - expected).abs() <= 1e-9 * expected,
        "profile work {recorded} vs trace size {expected}"
    );
    // Contiguity survives the snapping (within noise).
    for (a, b) in p.segments().zip(p.segments().skip(1)) {
        assert!(b.t0 >= a.t1 - ABS_EPS, "gap: {} -> {}", a.t1, b.t0);
        assert!(b.t0 <= a.t1 + 1e-9, "overlap: {} -> {}", a.t1, b.t0);
    }
    assert!((p.end() - s.makespan()).abs() <= 1e-9);
}

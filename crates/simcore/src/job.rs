//! Job model: arrival time, processing requirement, weight.

use serde::{Deserialize, Serialize};

/// Identifier of a job within a [`crate::Trace`]. Equal to the job's index
/// in the trace's arrival-sorted job list.
pub type JobId = u32;

/// A job in the online scheduling instance.
///
/// In the paper's notation, job `j` arrives at `r_j` ([`Job::arrival`]) and
/// requires `p_j` ([`Job::size`]) units of processing; on machines of speed
/// `s` it completes once it has received `p_j` units of work (a machine of
/// speed `s` performs `s·dt` work in `dt` time). The weight field supports
/// weighted policy variants (e.g. weighted RR); the paper's setting is
/// unweighted, i.e. all weights are 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Index of this job in its trace (arrival order, ties by insertion).
    pub id: JobId,
    /// Release/arrival time `r_j ≥ 0`; the scheduler first learns about the
    /// job at this time.
    pub arrival: f64,
    /// Processing requirement `p_j > 0`.
    pub size: f64,
    /// Positive weight, 1.0 in the paper's (unweighted) setting.
    pub weight: f64,
}

impl Job {
    /// A unit-weight job. `id` is assigned by [`crate::trace::TraceBuilder`];
    /// constructing jobs directly is mainly useful in tests.
    pub fn new(id: JobId, arrival: f64, size: f64) -> Self {
        Job {
            id,
            arrival,
            size,
            weight: 1.0,
        }
    }

    /// A weighted job.
    pub fn weighted(id: JobId, arrival: f64, size: f64, weight: f64) -> Self {
        Job {
            id,
            arrival,
            size,
            weight,
        }
    }

    /// Age of the job at time `t`: `t − r_j` (zero before arrival).
    #[inline]
    pub fn age_at(&self, t: f64) -> f64 {
        (t - self.arrival).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_is_clamped_before_arrival() {
        let j = Job::new(0, 5.0, 2.0);
        assert_eq!(j.age_at(3.0), 0.0);
        assert_eq!(j.age_at(5.0), 0.0);
        assert_eq!(j.age_at(8.5), 3.5);
    }

    #[test]
    fn constructors_set_weight() {
        assert_eq!(Job::new(1, 0.0, 1.0).weight, 1.0);
        assert_eq!(Job::weighted(1, 0.0, 1.0, 3.0).weight, 3.0);
    }
}

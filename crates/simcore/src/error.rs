//! Error types for trace construction and simulation.

use std::fmt;

/// Errors raised by trace validation and the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A job had a non-finite or non-positive size.
    BadJobSize {
        /// Offending job id.
        job: u32,
        /// The rejected size value.
        size: f64,
    },
    /// A job had a non-finite or negative arrival time.
    BadArrival {
        /// Offending job id.
        job: u32,
        /// The rejected arrival value.
        arrival: f64,
    },
    /// A job had a non-finite or non-positive weight.
    BadWeight {
        /// Offending job id.
        job: u32,
        /// The rejected weight value.
        weight: f64,
    },
    /// Machine count must be at least one.
    NoMachines,
    /// Speed must be finite and positive.
    BadSpeed(f64),
    /// A discrete-RR time quantum must be finite and positive. Reported
    /// by the quantum/DRR simulators; an earlier revision reused
    /// [`SimError::BadSpeed`] here, which printed a misleading "speed
    /// ... must be finite and positive" diagnostic for a quantum error.
    BadQuantum(f64),
    /// A context-switch overhead must be finite and non-negative.
    BadCtxSwitch(f64),
    /// An allocator returned a rate above the per-job cap (one machine of
    /// speed `s`), beyond tolerance.
    RateCapViolated {
        /// Offending job id.
        job: u32,
        /// The rate the allocator returned.
        rate: f64,
        /// The per-job cap it violated.
        cap: f64,
    },
    /// An allocator returned rates summing to more than `m·s`, beyond
    /// tolerance.
    TotalRateViolated {
        /// Sum of the returned rates.
        total: f64,
        /// The aggregate cap `m·s`.
        cap: f64,
    },
    /// An allocator returned a negative or non-finite rate.
    BadRate {
        /// Offending job id.
        job: u32,
        /// The rejected rate value.
        rate: f64,
    },
    /// The engine exceeded its event budget; either the instance is far
    /// larger than expected or a policy's review hints do not converge.
    EventBudgetExhausted {
        /// Events processed when the budget tripped.
        events: u64,
    },
    /// The engine made a zero-length step twice in a row without any state
    /// change — a policy is starving all jobs while work remains.
    Stalled {
        /// Simulation time at the stall.
        time: f64,
        /// Number of alive jobs at the stall.
        alive: usize,
    },
    /// A continuously-varying policy was run on the streaming engine
    /// without an explicit [`crate::StreamOptions::max_step`]. The
    /// materialised engine derives a default step from the mean job size
    /// of the whole trace; a stream has no such aggregate, so the caller
    /// must choose the integration step.
    MissingMaxStep,
    /// A job source produced more jobs than [`crate::JobId`] can address
    /// (`u32::MAX`); the streaming engine refuses to wrap ids.
    JobLimitExceeded {
        /// The id space that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadJobSize { job, size } => {
                write!(f, "job {job}: size {size} must be finite and positive")
            }
            SimError::BadArrival { job, arrival } => {
                write!(
                    f,
                    "job {job}: arrival {arrival} must be finite and non-negative"
                )
            }
            SimError::BadWeight { job, weight } => {
                write!(f, "job {job}: weight {weight} must be finite and positive")
            }
            SimError::NoMachines => write!(f, "machine count must be at least 1"),
            SimError::BadSpeed(s) => write!(f, "speed {s} must be finite and positive"),
            SimError::BadQuantum(q) => {
                write!(f, "quantum {q} must be finite and positive")
            }
            SimError::BadCtxSwitch(c) => {
                write!(
                    f,
                    "context-switch overhead {c} must be finite and non-negative"
                )
            }
            SimError::RateCapViolated { job, rate, cap } => {
                write!(f, "job {job}: rate {rate} exceeds per-job cap {cap}")
            }
            SimError::TotalRateViolated { total, cap } => {
                write!(f, "total rate {total} exceeds aggregate cap {cap}")
            }
            SimError::BadRate { job, rate } => {
                write!(f, "job {job}: rate {rate} must be finite and non-negative")
            }
            SimError::EventBudgetExhausted { events } => {
                write!(f, "simulation exceeded event budget after {events} events")
            }
            SimError::Stalled { time, alive } => {
                write!(f, "simulation stalled at t={time} with {alive} alive jobs")
            }
            SimError::MissingMaxStep => {
                write!(
                    f,
                    "streaming a continuously-varying policy requires an explicit max_step"
                )
            }
            SimError::JobLimitExceeded { limit } => {
                write!(f, "job source exceeded the {limit}-job id space")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = SimError::BadJobSize { job: 7, size: -1.0 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("-1"));

        let e = SimError::RateCapViolated {
            job: 3,
            rate: 2.5,
            cap: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("2.5"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::NoMachines);
        assert!(!e.to_string().is_empty());
    }
}

//! The exact event-driven simulation engine.
//!
//! Between *events* — job arrivals, job completions, policy review points,
//! and (for continuously-varying policies) adaptive step boundaries — every
//! alive job is processed at a constant rate, so the engine advances time
//! analytically to the earliest next event. For piecewise-constant policies
//! (RR, SRPT, SJF, FCFS, LAPS) the produced schedule is exact up to
//! floating-point rounding; there is no time-quantization error.

use crate::alloc::{check_rates, AliveJob, MachineConfig, RateAllocator};
use crate::error::SimError;
use crate::profile::Profile;
use crate::schedule::Schedule;
use crate::stats::SimStats;
use crate::trace::Trace;
use crate::{ABS_EPS, REL_EPS};
use std::time::Instant;

/// Engine knobs. `SimOptions::default()` is right for almost all uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Record the full piecewise-constant [`Profile`] (needed by the
    /// dual-fitting analysis and the validators; costs memory ∝ events·n).
    pub record_profile: bool,
    /// Maximum step length for policies with continuously-varying rates.
    /// `None` picks `mean_size / (64·speed)` automatically.
    pub max_step: Option<f64>,
    /// Hard cap on engine events as runaway protection. `None` picks a
    /// generous bound from the instance size.
    pub max_events: Option<u64>,
    /// Measure wall-clock time spent in the policy's `allocate` into
    /// [`SimStats::alloc_ns`]. Off by default: the two clock reads per
    /// event cost more than a whole event on small alive sets, so only
    /// diagnostic paths (harness tables, certificates) opt in.
    pub time_alloc: bool,
}

impl SimOptions {
    /// Options with profile recording enabled.
    pub fn with_profile() -> Self {
        SimOptions {
            record_profile: true,
            ..Default::default()
        }
    }

    /// Enable allocator wall-clock timing (see [`SimOptions::time_alloc`]).
    pub fn timed(mut self) -> Self {
        self.time_alloc = true;
        self
    }
}

/// Why the engine chose a particular step length; used to snap time exactly
/// onto arrival instants and to attribute events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StepReason {
    Arrival(f64),
    Completion,
    Review,
    AdaptiveStep,
}

/// Simulate `policy` on `trace` under `cfg`.
///
/// # Errors
/// Propagates validation failures ([`MachineConfig::validate`]), infeasible
/// allocations from the policy, stalls (positive remaining work but no
/// progress possible), and event-budget exhaustion.
pub fn simulate(
    trace: &Trace,
    policy: &mut dyn RateAllocator,
    cfg: MachineConfig,
    opts: SimOptions,
) -> Result<Schedule, SimError> {
    cfg.validate()?;
    policy.reset();

    let mut obs_span = tf_obs::span!("sim", "simulate");
    // Tracing subsumes the opt-in allocator timing: with a sink installed
    // the run is diagnostic anyway, so fold the alloc_ns clock reads in.
    let time_alloc = opts.time_alloc || tf_obs::enabled();

    let n = trace.len();
    let jobs = trace.jobs();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];
    let mut profile = opts.record_profile.then(|| Profile::new(cfg.m, cfg.speed));
    let mut stats = SimStats::default();

    let continuous = policy.continuous();
    let max_step = if continuous {
        opts.max_step.unwrap_or_else(|| {
            let mean = if n > 0 {
                trace.total_size() / n as f64
            } else {
                1.0
            };
            (mean / cfg.speed / 64.0).max(ABS_EPS)
        })
    } else {
        opts.max_step.unwrap_or(f64::INFINITY)
    };
    let event_budget = opts.max_events.unwrap_or_else(|| {
        let n64 = n as u64;
        let base = 4096 + 64 * n64 * n64.max(1);
        if continuous {
            let steps = (trace.makespan_upper_bound(cfg.speed) / max_step).ceil();
            base + 8 * steps.min(1e15) as u64
        } else {
            base
        }
    });

    // The alive set doubles as the policy's view: arrivals append, steps
    // update `remaining`/`attained` in place, and completions compact it
    // with a single order-preserving `retain` pass. Job ids equal trace
    // indices, so no separate index bookkeeping is needed.
    let mut alive: Vec<AliveJob> = Vec::new();
    let mut next_arrival = 0usize; // index into jobs
    let mut time = 0.0_f64;
    let mut events: u64 = 0;
    let mut zero_steps_in_a_row = 0u32;

    // Reusable scratch, sized once per high-water mark.
    let mut rates: Vec<f64> = Vec::new();

    loop {
        // Admit all jobs that have arrived by `time`.
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            let j = &jobs[next_arrival];
            alive.push(AliveJob {
                id: j.id,
                arrival: j.arrival,
                size: j.size,
                weight: j.weight,
                remaining: j.size,
                attained: 0.0,
                seq: j.id,
            });
            next_arrival += 1;
            events += 1;
            stats.jobs_admitted += 1;
        }
        if alive.len() > stats.peak_alive {
            stats.peak_alive = alive.len(); // alive only grows on admission
        }

        if alive.is_empty() {
            if next_arrival >= n {
                break; // all done
            }
            time = jobs[next_arrival].arrival;
            continue;
        }

        if events > event_budget {
            return Err(SimError::EventBudgetExhausted { events });
        }

        rates.clear();
        rates.resize(alive.len(), 0.0);
        let alloc_started = time_alloc.then(Instant::now);
        policy.allocate(time, &alive, &cfg, &mut rates);
        if let Some(t0) = alloc_started {
            stats.alloc_ns += t0.elapsed().as_nanos() as u64;
        }
        check_rates(&alive, &cfg, &rates, REL_EPS)?;
        // Clamp tolerated overshoot so downstream stays exactly feasible.
        for r in rates.iter_mut() {
            *r = r.clamp(0.0, cfg.job_cap());
        }

        // Earliest next event.
        let mut dt = f64::INFINITY;
        let mut reason = StepReason::AdaptiveStep;
        if next_arrival < n {
            let d = jobs[next_arrival].arrival - time;
            if d < dt {
                dt = d;
                reason = StepReason::Arrival(jobs[next_arrival].arrival);
            }
        }
        for (a, &r) in alive.iter().zip(&rates) {
            if r > ABS_EPS {
                let d = a.remaining / r;
                if d < dt {
                    dt = d;
                    reason = StepReason::Completion;
                }
            }
        }
        if let Some(rev) = policy.review_in(time, &alive, &cfg) {
            // A review in the past or at `now` would spin; insist on a
            // minimal positive advance.
            let rev = rev.max(ABS_EPS);
            if rev < dt {
                dt = rev;
                reason = StepReason::Review;
            }
        }
        if continuous && max_step < dt {
            dt = max_step;
            reason = StepReason::AdaptiveStep;
        }

        if !dt.is_finite() {
            // Work remains, nothing is running, and no arrival will change
            // that: the policy has stalled the system.
            return Err(SimError::Stalled {
                time,
                alive: alive.len(),
            });
        }

        if dt <= 0.0 {
            zero_steps_in_a_row += 1;
            if zero_steps_in_a_row > 2 {
                return Err(SimError::Stalled {
                    time,
                    alive: alive.len(),
                });
            }
        } else {
            zero_steps_in_a_row = 0;
        }

        // Advance: record the segment (arena append, no per-segment
        // allocation), deliver work, and detect completions in one pass.
        if dt > 0.0 {
            if let Some(p) = profile.as_mut() {
                p.push(
                    time,
                    time + dt,
                    alive.iter().zip(&rates).map(|(a, &r)| (a.id, r)),
                );
                stats.segments_recorded += 1;
            }
        }
        let mut any_done = false;
        for (a, &r) in alive.iter_mut().zip(&rates) {
            let w = r * dt;
            a.attained += w;
            a.remaining -= w;
            any_done |= a.remaining <= a.size * REL_EPS + ABS_EPS;
        }
        let step_end = time + dt;
        time = match reason {
            StepReason::Arrival(at) => at, // snap exactly onto the arrival
            _ => step_end,
        };
        if let Some(p) = profile.as_mut() {
            // Snapping moves `time` off `t0 + dt` by at most one rounding
            // step of the arrival instant (dt was computed as `at − t0`):
            // stretching the last segment to cover it is floating-point
            // noise, never unaccounted work.
            debug_assert!(
                time - step_end <= ABS_EPS + REL_EPS * time.abs(),
                "arrival snap stretched the profile by {} at t={time}",
                time - step_end
            );
            p.stretch_last_end(time); // keep profile contiguous after snapping
        }
        events += 1;
        match reason {
            StepReason::Arrival(_) => stats.arrival_steps += 1,
            StepReason::Completion => stats.completion_steps += 1,
            StepReason::Review => stats.review_steps += 1,
            StepReason::AdaptiveStep => stats.adaptive_steps += 1,
        }

        // Complete jobs whose remaining work has (numerically) vanished:
        // one order-preserving compaction, however many finish at once.
        if any_done {
            alive.retain(|a| {
                if a.remaining <= a.size * REL_EPS + ABS_EPS {
                    completion[a.id as usize] = time;
                    flow[a.id as usize] = time - a.arrival;
                    false
                } else {
                    true
                }
            });
        }
    }

    if let Some(p) = profile.as_mut() {
        let _coalesce_span = tf_obs::span!("sim", "coalesce");
        p.coalesce(ABS_EPS);
    }

    if tf_obs::enabled() {
        obs_span.arg("n", n as f64);
        obs_span.arg("m", cfg.m as f64);
        obs_span.arg("speed", cfg.speed);
        obs_span.arg("events", events as f64);
        tf_obs::counter!("sim", "events", events as f64);
        tf_obs::counter!("sim", "steps", stats.steps() as f64);
        tf_obs::counter!("sim", "peak_alive", stats.peak_alive as f64);
        tf_obs::counter!("sim", "alloc_ns", stats.alloc_ns as f64);
        if stats.segments_recorded > 0 {
            tf_obs::counter!("sim", "segments_recorded", stats.segments_recorded as f64);
        }
    }

    Ok(Schedule {
        policy: policy.name().to_string(),
        cfg,
        completion,
        flow,
        profile,
        events,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round Robin defined inline so engine tests do not depend on the
    /// policies crate (which depends on us).
    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(
            &mut self,
            _now: f64,
            alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
            rates.fill(share);
        }
    }

    /// Run-one-job-at-a-time in arrival order (FCFS), also inline.
    struct Fcfs;
    impl RateAllocator for Fcfs {
        fn name(&self) -> &'static str {
            "FCFS"
        }
        fn allocate(
            &mut self,
            _now: f64,
            _alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            for r in rates.iter_mut().take(cfg.m) {
                *r = cfg.speed;
            }
        }
    }

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn single_job_single_machine() {
        let t = trace(&[(2.0, 3.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 5.0).abs() < 1e-12);
        assert!((s.flow[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speed_augmentation_scales_processing() {
        let t = trace(&[(0.0, 3.0)]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(1, 3.0),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rr_two_equal_jobs_share_machine() {
        // Two unit jobs at t=0 on one machine under RR: both complete at 2.
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rr_known_closed_form() {
        // Jobs (r=0, p=1) and (r=0, p=2) under RR on 1 machine:
        // both run at 1/2 until job0 finishes at t=2; job1 then has 1 left,
        // finishing at t=3.
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
        assert!((s.total_flow() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rr_mid_run_arrival() {
        // Job0 (r=0, p=2), job1 (r=1, p=1) on 1 machine.
        // t∈[0,1): job0 alone at rate 1 → remaining 1 at t=1.
        // t≥1: both at 1/2. Job1 needs 2 time → but job0 finishes first:
        // both have remaining 1 at t=1 → both complete at t=3.
        let t = trace(&[(0.0, 2.0), (1.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 3.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rr_multiple_machines_dedicated_when_underloaded() {
        // 2 machines, 2 jobs: each gets a full machine (min(1, m/n) = 1).
        let t = trace(&[(0.0, 4.0), (0.0, 4.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(2), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 4.0).abs() < 1e-12);
        assert!((s.completion[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rr_multiple_machines_overloaded_split() {
        // 2 machines, 4 unit jobs: each runs at 2/4 = 1/2 → all done at 2.
        let t = trace(&[(0.0, 1.0); 4]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(2), SimOptions::default()).unwrap();
        for j in 0..4 {
            assert!((s.completion[j] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let t = trace(&[(0.0, 2.0), (0.5, 1.0)]);
        let s = simulate(&t, &mut Fcfs, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_between_jobs() {
        let t = trace(&[(0.0, 1.0), (10.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
        assert!((s.completion[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn profile_records_exact_segments() {
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.segment(0).rates, [(0, 0.5), (1, 0.5)]);
        assert_eq!(p.segment(1).rates, [(1, 1.0)]);
        assert!((p.total_work() - 3.0).abs() < 1e-9);
        assert!((p.work_of(0) - 1.0).abs() < 1e-9);
        assert!((p.work_of(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stalling_policy_is_detected() {
        struct Lazy;
        impl RateAllocator for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], _: &MachineConfig, rates: &mut [f64]) {
                rates.fill(0.0);
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let e = simulate(&t, &mut Lazy, MachineConfig::new(1), SimOptions::default());
        assert!(matches!(e, Err(SimError::Stalled { .. })));
    }

    #[test]
    fn infeasible_policy_is_rejected() {
        struct Greedy;
        impl RateAllocator for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
                rates.fill(2.0 * cfg.speed);
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let e = simulate(
            &t,
            &mut Greedy,
            MachineConfig::new(1),
            SimOptions::default(),
        );
        assert!(matches!(e, Err(SimError::RateCapViolated { .. })));
    }

    #[test]
    fn review_hints_fire() {
        // A policy that serves only the oldest job but asks for review every
        // 0.25 time units; engine must not miss the hint (observable via
        // event count exceeding the 3 events of plain FCFS).
        struct Hinty;
        impl RateAllocator for Hinty {
            fn name(&self) -> &'static str {
                "hinty"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
                rates[0] = cfg.speed;
            }
            fn review_in(&self, _: f64, _: &[AliveJob], _: &MachineConfig) -> Option<f64> {
                Some(0.25)
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let s = simulate(&t, &mut Hinty, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-9);
        assert!(s.events >= 4);
    }

    #[test]
    fn simultaneous_arrivals_and_completions() {
        // Three identical jobs arriving together complete together.
        let t = trace(&[(1.0, 2.0), (1.0, 2.0), (1.0, 2.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        for j in 0..3 {
            assert!((s.completion[j] - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn event_budget_guard() {
        let t = trace(&[(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let opts = SimOptions {
            max_events: Some(1),
            ..Default::default()
        };
        let e = simulate(&t, &mut Rr, MachineConfig::new(1), opts);
        assert!(matches!(e, Err(SimError::EventBudgetExhausted { .. })));
    }

    #[test]
    fn work_conservation_on_random_like_instance() {
        let t = trace(&[
            (0.0, 3.0),
            (0.5, 1.0),
            (0.5, 2.0),
            (2.0, 0.25),
            (7.0, 5.0),
            (7.0, 1.0),
        ]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(2, 1.5),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert!((p.total_work() - t.total_size()).abs() < 1e-6);
        for j in t.jobs() {
            assert!((p.work_of(j.id) - j.size).abs() < 1e-6, "job {}", j.id);
            assert!(s.flow[j.id as usize] >= j.size / 1.5 - 1e-9);
        }
    }
}

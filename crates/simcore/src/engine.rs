//! The exact event-driven simulation engine.
//!
//! Between *events* — job arrivals, job completions, policy review points,
//! and (for continuously-varying policies) adaptive step boundaries — every
//! alive job is processed at a constant rate, so the engine advances time
//! analytically to the earliest next event. For piecewise-constant policies
//! (RR, SRPT, SJF, FCFS, LAPS) the produced schedule is exact up to
//! floating-point rounding; there is no time-quantization error.

use crate::alloc::{check_rates, AliveJob, MachineConfig, RateAllocator};
use crate::error::SimError;
use crate::profile::{Profile, Segment};
use crate::schedule::Schedule;
use crate::trace::Trace;
use crate::{ABS_EPS, REL_EPS};

/// Engine knobs. `SimOptions::default()` is right for almost all uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Record the full piecewise-constant [`Profile`] (needed by the
    /// dual-fitting analysis and the validators; costs memory ∝ events·n).
    pub record_profile: bool,
    /// Maximum step length for policies with continuously-varying rates.
    /// `None` picks `mean_size / (64·speed)` automatically.
    pub max_step: Option<f64>,
    /// Hard cap on engine events as runaway protection. `None` picks a
    /// generous bound from the instance size.
    pub max_events: Option<u64>,
}

impl SimOptions {
    /// Options with profile recording enabled.
    pub fn with_profile() -> Self {
        SimOptions {
            record_profile: true,
            ..Default::default()
        }
    }
}

/// Why the engine chose a particular step length; used to snap time exactly
/// onto arrival instants and to attribute events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StepReason {
    Arrival(f64),
    Completion,
    Review,
    AdaptiveStep,
}

struct AliveState {
    job: usize, // index into trace.jobs()
    remaining: f64,
    attained: f64,
}

/// Simulate `policy` on `trace` under `cfg`.
///
/// # Errors
/// Propagates validation failures ([`MachineConfig::validate`]), infeasible
/// allocations from the policy, stalls (positive remaining work but no
/// progress possible), and event-budget exhaustion.
pub fn simulate(
    trace: &Trace,
    policy: &mut dyn RateAllocator,
    cfg: MachineConfig,
    opts: SimOptions,
) -> Result<Schedule, SimError> {
    cfg.validate()?;
    policy.reset();

    let n = trace.len();
    let jobs = trace.jobs();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];
    let mut segments: Vec<Segment> = Vec::new();

    let continuous = policy.continuous();
    let max_step = if continuous {
        opts.max_step.unwrap_or_else(|| {
            let mean = if n > 0 {
                trace.total_size() / n as f64
            } else {
                1.0
            };
            (mean / cfg.speed / 64.0).max(ABS_EPS)
        })
    } else {
        opts.max_step.unwrap_or(f64::INFINITY)
    };
    let event_budget = opts.max_events.unwrap_or_else(|| {
        let n64 = n as u64;
        let base = 4096 + 64 * n64 * n64.max(1);
        if continuous {
            let steps = (trace.makespan_upper_bound(cfg.speed) / max_step).ceil();
            base + 8 * steps.min(1e15) as u64
        } else {
            base
        }
    });

    let mut alive: Vec<AliveState> = Vec::new();
    let mut next_arrival = 0usize; // index into jobs
    let mut time = 0.0_f64;
    let mut events: u64 = 0;
    let mut zero_steps_in_a_row = 0u32;

    // Reusable buffers.
    let mut views: Vec<AliveJob> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();

    loop {
        // Admit all jobs that have arrived by `time`.
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            alive.push(AliveState {
                job: next_arrival,
                remaining: jobs[next_arrival].size,
                attained: 0.0,
            });
            next_arrival += 1;
            events += 1;
        }

        if alive.is_empty() {
            if next_arrival >= n {
                break; // all done
            }
            time = jobs[next_arrival].arrival;
            continue;
        }

        if events > event_budget {
            return Err(SimError::EventBudgetExhausted { events });
        }

        // `alive` is sorted by job index (arrival order) because arrivals
        // are admitted in trace order and completions preserve order.
        views.clear();
        views.extend(alive.iter().map(|a| {
            let j = &jobs[a.job];
            AliveJob {
                id: j.id,
                arrival: j.arrival,
                size: j.size,
                weight: j.weight,
                remaining: a.remaining,
                attained: a.attained,
                seq: j.id,
            }
        }));

        rates.clear();
        rates.resize(alive.len(), 0.0);
        policy.allocate(time, &views, &cfg, &mut rates);
        check_rates(&views, &cfg, &rates, REL_EPS)?;
        // Clamp tolerated overshoot so downstream stays exactly feasible.
        for r in rates.iter_mut() {
            *r = r.clamp(0.0, cfg.job_cap());
        }

        // Earliest next event.
        let mut dt = f64::INFINITY;
        let mut reason = StepReason::AdaptiveStep;
        if next_arrival < n {
            let d = jobs[next_arrival].arrival - time;
            if d < dt {
                dt = d;
                reason = StepReason::Arrival(jobs[next_arrival].arrival);
            }
        }
        for (a, &r) in alive.iter().zip(&rates) {
            if r > ABS_EPS {
                let d = a.remaining / r;
                if d < dt {
                    dt = d;
                    reason = StepReason::Completion;
                }
            }
        }
        if let Some(rev) = policy.review_in(time, &views, &cfg) {
            // A review in the past or at `now` would spin; insist on a
            // minimal positive advance.
            let rev = rev.max(ABS_EPS);
            if rev < dt {
                dt = rev;
                reason = StepReason::Review;
            }
        }
        if continuous && max_step < dt {
            dt = max_step;
            reason = StepReason::AdaptiveStep;
        }

        if !dt.is_finite() {
            // Work remains, nothing is running, and no arrival will change
            // that: the policy has stalled the system.
            return Err(SimError::Stalled {
                time,
                alive: alive.len(),
            });
        }

        if dt <= 0.0 {
            zero_steps_in_a_row += 1;
            if zero_steps_in_a_row > 2 {
                return Err(SimError::Stalled {
                    time,
                    alive: alive.len(),
                });
            }
        } else {
            zero_steps_in_a_row = 0;
        }

        // Advance.
        if opts.record_profile && dt > 0.0 {
            let seg_rates: Vec<(u32, f64)> =
                views.iter().zip(&rates).map(|(v, &r)| (v.id, r)).collect();
            segments.push(Segment {
                t0: time,
                t1: time + dt,
                rates: seg_rates,
            });
        }
        for (a, &r) in alive.iter_mut().zip(&rates) {
            let w = r * dt;
            a.attained += w;
            a.remaining -= w;
        }
        time = match reason {
            StepReason::Arrival(at) => at, // snap exactly onto the arrival
            _ => time + dt,
        };
        if opts.record_profile {
            if let Some(s) = segments.last_mut() {
                s.t1 = s.t1.max(time); // keep profile contiguous after snapping
            }
        }
        events += 1;

        // Complete jobs whose remaining work has (numerically) vanished.
        let mut i = 0;
        while i < alive.len() {
            let a = &alive[i];
            let j = &jobs[a.job];
            if a.remaining <= j.size * REL_EPS + ABS_EPS {
                completion[a.job] = time;
                flow[a.job] = time - j.arrival;
                alive.remove(i);
            } else {
                i += 1;
            }
        }
    }

    let profile = if opts.record_profile {
        let mut p = Profile {
            segments,
            m: cfg.m,
            speed: cfg.speed,
        };
        p.coalesce(ABS_EPS);
        Some(p)
    } else {
        None
    };

    Ok(Schedule {
        policy: policy.name().to_string(),
        cfg,
        completion,
        flow,
        profile,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round Robin defined inline so engine tests do not depend on the
    /// policies crate (which depends on us).
    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(
            &mut self,
            _now: f64,
            alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
            rates.fill(share);
        }
    }

    /// Run-one-job-at-a-time in arrival order (FCFS), also inline.
    struct Fcfs;
    impl RateAllocator for Fcfs {
        fn name(&self) -> &'static str {
            "FCFS"
        }
        fn allocate(
            &mut self,
            _now: f64,
            _alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            for r in rates.iter_mut().take(cfg.m) {
                *r = cfg.speed;
            }
        }
    }

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn single_job_single_machine() {
        let t = trace(&[(2.0, 3.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 5.0).abs() < 1e-12);
        assert!((s.flow[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speed_augmentation_scales_processing() {
        let t = trace(&[(0.0, 3.0)]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(1, 3.0),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rr_two_equal_jobs_share_machine() {
        // Two unit jobs at t=0 on one machine under RR: both complete at 2.
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rr_known_closed_form() {
        // Jobs (r=0, p=1) and (r=0, p=2) under RR on 1 machine:
        // both run at 1/2 until job0 finishes at t=2; job1 then has 1 left,
        // finishing at t=3.
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
        assert!((s.total_flow() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rr_mid_run_arrival() {
        // Job0 (r=0, p=2), job1 (r=1, p=1) on 1 machine.
        // t∈[0,1): job0 alone at rate 1 → remaining 1 at t=1.
        // t≥1: both at 1/2. Job1 needs 2 time → but job0 finishes first:
        // both have remaining 1 at t=1 → both complete at t=3.
        let t = trace(&[(0.0, 2.0), (1.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 3.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rr_multiple_machines_dedicated_when_underloaded() {
        // 2 machines, 2 jobs: each gets a full machine (min(1, m/n) = 1).
        let t = trace(&[(0.0, 4.0), (0.0, 4.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(2), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 4.0).abs() < 1e-12);
        assert!((s.completion[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rr_multiple_machines_overloaded_split() {
        // 2 machines, 4 unit jobs: each runs at 2/4 = 1/2 → all done at 2.
        let t = trace(&[(0.0, 1.0); 4]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(2), SimOptions::default()).unwrap();
        for j in 0..4 {
            assert!((s.completion[j] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let t = trace(&[(0.0, 2.0), (0.5, 1.0)]);
        let s = simulate(&t, &mut Fcfs, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_between_jobs() {
        let t = trace(&[(0.0, 1.0), (10.0, 1.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
        assert!((s.completion[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn profile_records_exact_segments() {
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].rates, vec![(0, 0.5), (1, 0.5)]);
        assert_eq!(p.segments[1].rates, vec![(1, 1.0)]);
        assert!((p.total_work() - 3.0).abs() < 1e-9);
        assert!((p.work_of(0) - 1.0).abs() < 1e-9);
        assert!((p.work_of(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stalling_policy_is_detected() {
        struct Lazy;
        impl RateAllocator for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], _: &MachineConfig, rates: &mut [f64]) {
                rates.fill(0.0);
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let e = simulate(&t, &mut Lazy, MachineConfig::new(1), SimOptions::default());
        assert!(matches!(e, Err(SimError::Stalled { .. })));
    }

    #[test]
    fn infeasible_policy_is_rejected() {
        struct Greedy;
        impl RateAllocator for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
                rates.fill(2.0 * cfg.speed);
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let e = simulate(
            &t,
            &mut Greedy,
            MachineConfig::new(1),
            SimOptions::default(),
        );
        assert!(matches!(e, Err(SimError::RateCapViolated { .. })));
    }

    #[test]
    fn review_hints_fire() {
        // A policy that serves only the oldest job but asks for review every
        // 0.25 time units; engine must not miss the hint (observable via
        // event count exceeding the 3 events of plain FCFS).
        struct Hinty;
        impl RateAllocator for Hinty {
            fn name(&self) -> &'static str {
                "hinty"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
                rates[0] = cfg.speed;
            }
            fn review_in(&self, _: f64, _: &[AliveJob], _: &MachineConfig) -> Option<f64> {
                Some(0.25)
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let s = simulate(&t, &mut Hinty, MachineConfig::new(1), SimOptions::default()).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-9);
        assert!(s.events >= 4);
    }

    #[test]
    fn simultaneous_arrivals_and_completions() {
        // Three identical jobs arriving together complete together.
        let t = trace(&[(1.0, 2.0), (1.0, 2.0), (1.0, 2.0)]);
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        for j in 0..3 {
            assert!((s.completion[j] - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn event_budget_guard() {
        let t = trace(&[(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let opts = SimOptions {
            max_events: Some(1),
            ..Default::default()
        };
        let e = simulate(&t, &mut Rr, MachineConfig::new(1), opts);
        assert!(matches!(e, Err(SimError::EventBudgetExhausted { .. })));
    }

    #[test]
    fn work_conservation_on_random_like_instance() {
        let t = trace(&[
            (0.0, 3.0),
            (0.5, 1.0),
            (0.5, 2.0),
            (2.0, 0.25),
            (7.0, 5.0),
            (7.0, 1.0),
        ]);
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(2, 1.5),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert!((p.total_work() - t.total_size()).abs() < 1e-6);
        for j in t.jobs() {
            assert!((p.work_of(j.id) - j.size).abs() < 1e-6, "job {}", j.id);
            assert!(s.flow[j.id as usize] >= j.size / 1.5 - 1e-9);
        }
    }
}

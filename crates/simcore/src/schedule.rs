//! Simulation output: completion times, flow times, optional profile.

use crate::alloc::MachineConfig;
use crate::profile::Profile;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// The result of simulating one policy on one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Policy name the schedule was produced by.
    pub policy: String,
    /// Machine environment it ran in.
    pub cfg: MachineConfig,
    /// Completion time `C_j`, indexed by job id.
    pub completion: Vec<f64>,
    /// Flow time `F_j = C_j − r_j`, indexed by job id.
    pub flow: Vec<f64>,
    /// Exact piecewise-constant execution record, when requested via
    /// [`crate::SimOptions::record_profile`].
    pub profile: Option<Profile>,
    /// Number of engine events processed (arrivals, completions, reviews,
    /// adaptive steps) — a cost/diagnostic metric.
    pub events: u64,
    /// Per-run observability counters (event breakdown by step reason,
    /// policy time, peak alive set, segments recorded).
    pub stats: SimStats,
}

impl Schedule {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.flow.len()
    }

    /// True iff the instance had no jobs.
    pub fn is_empty(&self) -> bool {
        self.flow.is_empty()
    }

    /// Total (ℓ1) flow time `Σ_j F_j`.
    pub fn total_flow(&self) -> f64 {
        self.flow.iter().sum()
    }

    /// Maximum (ℓ∞) flow time.
    pub fn max_flow(&self) -> f64 {
        self.flow.iter().fold(0.0, |a, &f| a.max(f))
    }

    /// Sum of `k`-th powers of flow times `Σ_j F_j^k` — the quantity the
    /// paper's analysis bounds (the ℓk norm is its k-th root).
    pub fn flow_power_sum(&self, k: f64) -> f64 {
        self.flow.iter().map(|&f| f.powf(k)).sum()
    }

    /// The ℓk norm of the flow-time vector, `(Σ_j F_j^k)^{1/k}`.
    /// `k = f64::INFINITY` yields the max flow.
    pub fn flow_norm(&self, k: f64) -> f64 {
        if k.is_infinite() {
            self.max_flow()
        } else {
            self.flow_power_sum(k).powf(1.0 / k)
        }
    }

    /// Latest completion time (makespan); 0 for an empty instance.
    pub fn makespan(&self) -> f64 {
        self.completion.iter().fold(0.0, |a, &c| a.max(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(flows: &[f64]) -> Schedule {
        Schedule {
            policy: "test".into(),
            cfg: MachineConfig::new(1),
            completion: flows.to_vec(), // arrivals all 0 for this helper
            flow: flows.to_vec(),
            profile: None,
            events: 0,
            stats: SimStats::default(),
        }
    }

    #[test]
    fn norms() {
        let s = sched(&[3.0, 4.0]);
        assert_eq!(s.total_flow(), 7.0);
        assert_eq!(s.max_flow(), 4.0);
        assert!((s.flow_norm(2.0) - 5.0).abs() < 1e-12);
        assert_eq!(s.flow_norm(f64::INFINITY), 4.0);
        assert!((s.flow_power_sum(3.0) - (27.0 + 64.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let s = sched(&[]);
        assert!(s.is_empty());
        assert_eq!(s.total_flow(), 0.0);
        assert_eq!(s.max_flow(), 0.0);
        assert_eq!(s.makespan(), 0.0);
    }
}

//! Lightweight per-run observability counters.
//!
//! The engine fills a [`SimStats`] on every simulation and carries it on
//! the returned [`crate::Schedule`]. The counters answer the questions
//! that come up when a run is slow or suspicious — *what kind* of events
//! dominated, how much wall-clock went to the policy itself, how large the
//! alive set got — without re-running under a profiler.

use serde::{Deserialize, Serialize};

/// Counters collected by one `simulate()` run. All counters are exact;
/// `alloc_ns` is wall-clock and therefore machine-dependent (it is for
/// diagnostics and harness tables, never for test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Steps whose earliest next event was a job arrival.
    pub arrival_steps: u64,
    /// Steps ended by a (predicted) job completion.
    pub completion_steps: u64,
    /// Steps ended by a policy review point ([`crate::RateAllocator::review_in`]).
    pub review_steps: u64,
    /// Bounded adaptive steps taken for continuously-varying policies.
    pub adaptive_steps: u64,
    /// Jobs admitted into the alive set (equals the trace size on success).
    pub jobs_admitted: u64,
    /// Total wall-clock nanoseconds spent inside the policy's `allocate`.
    pub alloc_ns: u64,
    /// Largest simultaneous alive-set size observed.
    pub peak_alive: usize,
    /// Profile segments recorded before coalescing (0 when profile
    /// recording is off).
    pub segments_recorded: u64,
}

impl SimStats {
    /// Total engine steps across all reasons (excludes admissions, which
    /// are counted separately in [`SimStats::jobs_admitted`]).
    pub fn steps(&self) -> u64 {
        self.arrival_steps + self.completion_steps + self.review_steps + self.adaptive_steps
    }

    /// Time spent in the policy's `allocate`, in seconds.
    pub fn alloc_secs(&self) -> f64 {
        self.alloc_ns as f64 * 1e-9
    }

    /// These counters as a flat [`tf_obs::ObsRegistry`] under the `sim.`
    /// namespace, ready to merge with solver and cache registries.
    /// `sim.peak_alive` is max-combining; everything else sums.
    pub fn registry(&self) -> tf_obs::ObsRegistry {
        let mut reg = tf_obs::ObsRegistry::from_counters([
            ("sim.arrival_steps", self.arrival_steps as f64),
            ("sim.completion_steps", self.completion_steps as f64),
            ("sim.review_steps", self.review_steps as f64),
            ("sim.adaptive_steps", self.adaptive_steps as f64),
            ("sim.jobs_admitted", self.jobs_admitted as f64),
            ("sim.alloc_ns", self.alloc_ns as f64),
            ("sim.segments_recorded", self.segments_recorded as f64),
        ]);
        reg.record_max("sim.peak_alive", self.peak_alive as f64);
        reg
    }

    /// Fold another run's counters into this one: counts add, peaks max.
    /// Used by harness tables that aggregate over a corpus of runs.
    pub fn absorb(&mut self, other: &SimStats) {
        self.arrival_steps += other.arrival_steps;
        self.completion_steps += other.completion_steps;
        self.review_steps += other.review_steps;
        self.adaptive_steps += other.adaptive_steps;
        self.jobs_admitted += other.jobs_admitted;
        self.alloc_ns += other.alloc_ns;
        self.peak_alive = self.peak_alive.max(other.peak_alive);
        self.segments_recorded += other.segments_recorded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_sums_reasons() {
        let s = SimStats {
            arrival_steps: 2,
            completion_steps: 3,
            review_steps: 5,
            adaptive_steps: 7,
            ..Default::default()
        };
        assert_eq!(s.steps(), 17);
    }

    #[test]
    fn alloc_secs_converts() {
        let s = SimStats {
            alloc_ns: 2_500_000_000,
            ..Default::default()
        };
        assert!((s.alloc_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_adds_counts_and_maxes_peak() {
        let mut a = SimStats {
            arrival_steps: 1,
            alloc_ns: 10,
            peak_alive: 5,
            ..Default::default()
        };
        let b = SimStats {
            arrival_steps: 2,
            completion_steps: 3,
            alloc_ns: 7,
            peak_alive: 4,
            segments_recorded: 9,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.arrival_steps, 3);
        assert_eq!(a.completion_steps, 3);
        assert_eq!(a.alloc_ns, 17);
        assert_eq!(a.peak_alive, 5);
        assert_eq!(a.segments_recorded, 9);
    }

    #[test]
    fn registry_namespaces_and_combines() {
        let a = SimStats {
            arrival_steps: 2,
            completion_steps: 3,
            peak_alive: 5,
            ..Default::default()
        };
        let b = SimStats {
            completion_steps: 4,
            peak_alive: 3,
            ..Default::default()
        };
        let mut reg = a.registry();
        reg.merge(&b.registry());
        assert_eq!(reg.get("sim.arrival_steps"), Some(2.0));
        assert_eq!(reg.get("sim.completion_steps"), Some(7.0));
        assert_eq!(reg.get("sim.peak_alive"), Some(5.0)); // max, not sum
    }

    #[test]
    fn serde_roundtrip() {
        let s = SimStats {
            arrival_steps: 1,
            completion_steps: 2,
            review_steps: 3,
            adaptive_steps: 4,
            jobs_admitted: 5,
            alloc_ns: 6,
            peak_alive: 7,
            segments_recorded: 8,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

//! Traces: validated, arrival-sorted job sequences.

use crate::error::SimError;
use crate::job::{Job, JobId};
use serde::{Deserialize, Serialize};

/// A validated scheduling instance: jobs sorted by arrival time (ties broken
/// by insertion order), each with finite positive size and weight.
///
/// Job ids equal indices into [`Trace::jobs`], so downstream code can use
/// dense `Vec`s indexed by `JobId` for per-job data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Build a trace from `(arrival, size)` pairs with unit weights.
    ///
    /// # Errors
    /// Returns [`SimError`] if any arrival is negative/non-finite or any
    /// size is non-positive/non-finite.
    pub fn from_pairs<I>(pairs: I) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut b = TraceBuilder::new();
        for (arrival, size) in pairs {
            b.push(arrival, size);
        }
        b.build()
    }

    /// All jobs, sorted by `(arrival, insertion order)`.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True iff the trace has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job lookup by id (id == index).
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id as usize]
    }

    /// Total processing requirement `Σ_j p_j`.
    pub fn total_size(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Largest job size `max_j p_j` (0 for an empty trace).
    pub fn max_size(&self) -> f64 {
        self.jobs.iter().fold(0.0, |a, j| a.max(j.size))
    }

    /// Earliest arrival (0 for an empty trace).
    pub fn first_arrival(&self) -> f64 {
        self.jobs.first().map_or(0.0, |j| j.arrival)
    }

    /// Latest arrival (0 for an empty trace).
    pub fn last_arrival(&self) -> f64 {
        self.jobs.last().map_or(0.0, |j| j.arrival)
    }

    /// An upper bound on the makespan of *any* non-idling schedule on `m`
    /// machines of speed `speed`: last arrival plus total remaining work
    /// drained at the slowest non-idling rate (one machine).
    ///
    /// Useful for sizing time-indexed LPs and event budgets.
    pub fn makespan_upper_bound(&self, speed: f64) -> f64 {
        self.last_arrival() + self.total_size() / speed
    }

    /// True if all arrivals and sizes are integers (within `tol`), the
    /// precondition for the exact time-indexed LP lower bound.
    pub fn is_integral(&self, tol: f64) -> bool {
        self.jobs.iter().all(|j| {
            (j.arrival - j.arrival.round()).abs() <= tol && (j.size - j.size.round()).abs() <= tol
        })
    }

    /// Round every arrival down and every size up to the nearest integer,
    /// yielding an integral trace whose optimum lower-bounds metrics of the
    /// original only approximately; used to feed the time-indexed LP when
    /// the source trace is fractional. Sizes are clamped to at least 1.
    pub fn to_integral(&self) -> Trace {
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                id: j.id,
                arrival: j.arrival.floor(),
                size: j.size.ceil().max(1.0),
                weight: j.weight,
            })
            .collect();
        Trace { jobs }
    }

    /// System utilization `ρ = Σ p_j / (m·s·T)` where `T` spans first to
    /// last arrival; a rough congestion indicator (meaningful for arrival
    /// spans `> 0`).
    pub fn utilization(&self, m: usize, speed: f64) -> f64 {
        let span = self.last_arrival() - self.first_arrival();
        if span <= 0.0 {
            f64::INFINITY
        } else {
            self.total_size() / (m as f64 * speed * span)
        }
    }
}

/// Incremental builder for [`Trace`]; sorts and assigns ids at
/// [`TraceBuilder::build`].
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    jobs: Vec<(f64, f64, f64)>, // arrival, size, weight
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a unit-weight job.
    pub fn push(&mut self, arrival: f64, size: f64) -> &mut Self {
        self.jobs.push((arrival, size, 1.0));
        self
    }

    /// Append a weighted job.
    pub fn push_weighted(&mut self, arrival: f64, size: f64, weight: f64) -> &mut Self {
        self.jobs.push((arrival, size, weight));
        self
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True iff no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Validate, sort by arrival (stable — ties keep insertion order), and
    /// assign dense ids.
    pub fn build(self) -> Result<Trace, SimError> {
        for (i, &(arrival, size, weight)) in self.jobs.iter().enumerate() {
            let id = i as JobId;
            if !size.is_finite() || size <= 0.0 {
                return Err(SimError::BadJobSize { job: id, size });
            }
            if !arrival.is_finite() || arrival < 0.0 {
                return Err(SimError::BadArrival { job: id, arrival });
            }
            if !weight.is_finite() || weight <= 0.0 {
                return Err(SimError::BadWeight { job: id, weight });
            }
        }
        let mut jobs: Vec<Job> = self
            .jobs
            .into_iter()
            .map(|(arrival, size, weight)| Job {
                id: 0,
                arrival,
                size,
                weight,
            })
            .collect();
        jobs.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as JobId;
        }
        Ok(Trace { jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_assigns_ids() {
        let t = Trace::from_pairs([(3.0, 1.0), (1.0, 2.0), (2.0, 5.0)]).unwrap();
        let arrivals: Vec<f64> = t.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![1.0, 2.0, 3.0]);
        let ids: Vec<JobId> = t.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn ties_keep_insertion_order() {
        let mut b = TraceBuilder::new();
        b.push(1.0, 10.0).push(1.0, 20.0).push(1.0, 30.0);
        let t = b.build().unwrap();
        let sizes: Vec<f64> = t.jobs().iter().map(|j| j.size).collect();
        assert_eq!(sizes, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn rejects_bad_jobs() {
        assert!(matches!(
            Trace::from_pairs([(0.0, 0.0)]),
            Err(SimError::BadJobSize { .. })
        ));
        assert!(matches!(
            Trace::from_pairs([(-1.0, 1.0)]),
            Err(SimError::BadArrival { .. })
        ));
        assert!(matches!(
            Trace::from_pairs([(0.0, f64::NAN)]),
            Err(SimError::BadJobSize { .. })
        ));
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 1.0, 0.0);
        assert!(matches!(b.build(), Err(SimError::BadWeight { .. })));
    }

    #[test]
    fn aggregates() {
        let t = Trace::from_pairs([(0.0, 2.0), (4.0, 6.0)]).unwrap();
        assert_eq!(t.total_size(), 8.0);
        assert_eq!(t.max_size(), 6.0);
        assert_eq!(t.first_arrival(), 0.0);
        assert_eq!(t.last_arrival(), 4.0);
        assert_eq!(t.makespan_upper_bound(2.0), 4.0 + 4.0);
        assert!((t.utilization(1, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integrality_checks_and_rounding() {
        let t = Trace::from_pairs([(0.0, 2.0), (3.0, 1.0)]).unwrap();
        assert!(t.is_integral(1e-9));
        let f = Trace::from_pairs([(0.5, 1.2)]).unwrap();
        assert!(!f.is_integral(1e-9));
        let g = f.to_integral();
        assert_eq!(g.job(0).arrival, 0.0);
        assert_eq!(g.job(0).size, 2.0);
        // Tiny sizes round up to at least 1.
        let h = Trace::from_pairs([(0.0, 0.01)]).unwrap().to_integral();
        assert_eq!(h.job(0).size, 1.0);
    }

    #[test]
    fn empty_trace() {
        let t = TraceBuilder::new().build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.total_size(), 0.0);
        assert_eq!(t.makespan_upper_bound(1.0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Trace::from_pairs([(0.0, 2.0), (4.0, 6.0)]).unwrap();
        let s = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}

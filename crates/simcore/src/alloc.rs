//! The rate-allocation interface between policies and the engine.

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// The machine environment: `m` identical machines, each of speed `speed`.
///
/// `speed > 1` models resource augmentation: an `s`-speed algorithm
/// processes jobs `s` times faster than the optimal scheduler it is
/// compared against (which runs at speed 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of identical machines, `m ≥ 1`.
    pub m: usize,
    /// Speed of every machine, `s > 0`.
    pub speed: f64,
}

impl MachineConfig {
    /// `m` machines of unit speed.
    pub fn new(m: usize) -> Self {
        MachineConfig { m, speed: 1.0 }
    }

    /// `m` machines of speed `speed`.
    pub fn with_speed(m: usize, speed: f64) -> Self {
        MachineConfig { m, speed }
    }

    /// Per-job rate cap: one machine of speed `s` (a job occupies at most
    /// one machine at a time — Section 2 of the paper).
    #[inline]
    pub fn job_cap(&self) -> f64 {
        self.speed
    }

    /// Aggregate rate cap `m·s`.
    #[inline]
    pub fn total_cap(&self) -> f64 {
        self.m as f64 * self.speed
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.m == 0 {
            return Err(SimError::NoMachines);
        }
        if !self.speed.is_finite() || self.speed <= 0.0 {
            return Err(SimError::BadSpeed(self.speed));
        }
        Ok(())
    }
}

/// Snapshot of an alive (released, uncompleted) job handed to allocators.
///
/// Non-clairvoyant policies (RR, SETF, FCFS, LAPS) must ignore
/// [`AliveJob::size`] and [`AliveJob::remaining`]; the engine exposes them
/// uniformly so clairvoyant baselines (SRPT, SJF) share the same interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliveJob {
    /// Trace id of the job.
    pub id: crate::JobId,
    /// Arrival time `r_j`.
    pub arrival: f64,
    /// Total size `p_j` (clairvoyant information).
    pub size: f64,
    /// Weight (1.0 in the unweighted setting).
    pub weight: f64,
    /// Remaining work `p_j −` attained (clairvoyant information).
    pub remaining: f64,
    /// Work received so far (elapsed service; observable on-line).
    pub attained: f64,
    /// Arrival rank among all jobs in the trace (0-based; earlier arrivals
    /// have smaller rank, ties by trace order). Observable on-line.
    pub seq: u32,
}

impl AliveJob {
    /// Age `t − r_j` of the job at time `t ≥ r_j`.
    #[inline]
    pub fn age_at(&self, t: f64) -> f64 {
        (t - self.arrival).max(0.0)
    }
}

/// A scheduling policy, expressed as an instantaneous rate allocator.
///
/// At any time the engine asks the policy to distribute processing rates
/// over the alive jobs subject to the feasibility constraints of Section 2
/// of the paper (scaled by the speed `s`):
///
/// * `0 ≤ rates[i] ≤ cfg.job_cap()` for every job, and
/// * `Σ_i rates[i] ≤ cfg.total_cap()`.
///
/// The engine assumes the allocation stays constant until the next *event*:
/// an arrival, a completion, or the policy-declared review point
/// ([`RateAllocator::review_in`]). Policies whose allocation varies
/// continuously between events (e.g. rates proportional to job age) must
/// return `true` from [`RateAllocator::continuous`]; the engine then bounds
/// step length and re-invokes `allocate` on a fine adaptive grid.
pub trait RateAllocator {
    /// Short stable name for tables and logs (e.g. `"RR"`, `"SRPT"`).
    fn name(&self) -> &'static str;

    /// Fill `rates[i]` with the processing rate for `alive[i]` at time
    /// `now`. `rates` arrives zeroed and has `alive.len()` entries; `alive`
    /// is sorted by `(arrival, seq)`.
    fn allocate(&mut self, now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]);

    /// If the allocation just returned may change at a known future time
    /// even without arrivals/completions (e.g. SETF's age-equalization
    /// points), return the duration until that time. `None` means the
    /// allocation is valid until the next external event.
    fn review_in(&self, _now: f64, _alive: &[AliveJob], _cfg: &MachineConfig) -> Option<f64> {
        None
    }

    /// True if rates vary continuously with time between events. The engine
    /// then integrates with bounded adaptive steps instead of trusting
    /// piecewise-constant extrapolation.
    fn continuous(&self) -> bool {
        false
    }

    /// Reset internal state before a fresh simulation run. Stateless
    /// policies need not override this.
    fn reset(&mut self) {}
}

/// Check an allocation against the feasibility constraints with relative
/// tolerance `rel_eps`; returns the first violation found.
pub fn check_rates(
    alive: &[AliveJob],
    cfg: &MachineConfig,
    rates: &[f64],
    rel_eps: f64,
) -> Result<(), SimError> {
    debug_assert_eq!(alive.len(), rates.len());
    let cap = cfg.job_cap();
    let tol = cap * rel_eps + crate::ABS_EPS;
    let mut total = 0.0;
    for (a, &r) in alive.iter().zip(rates) {
        if !r.is_finite() || r < -tol {
            return Err(SimError::BadRate { job: a.id, rate: r });
        }
        if r > cap + tol {
            return Err(SimError::RateCapViolated {
                job: a.id,
                rate: r,
                cap,
            });
        }
        total += r;
    }
    let total_cap = cfg.total_cap();
    if total > total_cap * (1.0 + rel_eps) + crate::ABS_EPS {
        return Err(SimError::TotalRateViolated {
            total,
            cap: total_cap,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(n: usize) -> Vec<AliveJob> {
        (0..n)
            .map(|i| AliveJob {
                id: i as u32,
                arrival: 0.0,
                size: 1.0,
                weight: 1.0,
                remaining: 1.0,
                attained: 0.0,
                seq: i as u32,
            })
            .collect()
    }

    #[test]
    fn config_caps() {
        let cfg = MachineConfig::with_speed(4, 2.5);
        assert_eq!(cfg.job_cap(), 2.5);
        assert_eq!(cfg.total_cap(), 10.0);
        assert!(cfg.validate().is_ok());
        assert!(MachineConfig::new(0).validate().is_err());
        assert!(MachineConfig::with_speed(1, 0.0).validate().is_err());
        assert!(MachineConfig::with_speed(1, f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn check_rates_accepts_feasible() {
        let cfg = MachineConfig::with_speed(2, 1.0);
        let a = alive(3);
        assert!(check_rates(&a, &cfg, &[1.0, 0.5, 0.5], 1e-9).is_ok());
        assert!(check_rates(&a, &cfg, &[0.0, 0.0, 0.0], 1e-9).is_ok());
    }

    #[test]
    fn check_rates_rejects_violations() {
        let cfg = MachineConfig::with_speed(2, 1.0);
        let a = alive(3);
        assert!(matches!(
            check_rates(&a, &cfg, &[1.5, 0.0, 0.0], 1e-9),
            Err(SimError::RateCapViolated { .. })
        ));
        assert!(matches!(
            check_rates(&a, &cfg, &[1.0, 1.0, 1.0], 1e-9),
            Err(SimError::TotalRateViolated { .. })
        ));
        assert!(matches!(
            check_rates(&a, &cfg, &[-0.5, 0.0, 0.0], 1e-9),
            Err(SimError::BadRate { .. })
        ));
        assert!(matches!(
            check_rates(&a, &cfg, &[f64::NAN, 0.0, 0.0], 1e-9),
            Err(SimError::BadRate { .. })
        ));
    }

    #[test]
    fn check_rates_tolerates_rounding() {
        let cfg = MachineConfig::with_speed(3, 1.0);
        let a = alive(3);
        // Sum is 3.0 + 3 ulps-ish of noise: fine.
        let r = [1.0 + 1e-12, 1.0, 1.0];
        assert!(check_rates(&a, &cfg, &r, 1e-9).is_ok());
    }
}

//! McNaughton's wrap-around rule: realizing fractional allocations on
//! concrete machines.
//!
//! The paper (Section 2) characterizes feasible schedules fractionally: at
//! each instant, job `j` receives a machine share `m_j(t) ∈ [0, 1]` with
//! `Σ_j m_j(t) ≤ m`. This module proves that abstraction faithful by
//! construction: any constant fractional allocation over an interval is
//! realized as a preemptive schedule on `m` physical machines in which no
//! job ever runs on two machines simultaneously and no machine runs two
//! jobs — McNaughton's classical wrap-around argument.

use crate::job::JobId;
use crate::profile::SegmentRef;

/// A contiguous run of one job on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSlot {
    /// Job being run.
    pub job: JobId,
    /// Start time (absolute).
    pub start: f64,
    /// End time (absolute, `> start`).
    pub end: f64,
}

/// A concrete per-machine realization of one profile segment.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineAssignment {
    /// `slots[i]` is machine `i`'s timeline within the segment, ordered by
    /// start time.
    pub slots: Vec<Vec<MachineSlot>>,
}

/// Realize one profile segment on `m` machines of speed `speed` via the
/// wrap-around rule.
///
/// Preconditions (engine-enforced): every rate is in `[0, speed]` and rates
/// sum to at most `m·speed`. Jobs with zero rate are skipped.
///
/// Returns `None` if the preconditions are violated beyond tolerance.
pub fn wrap_around(seg: SegmentRef<'_>, m: usize, speed: f64) -> Option<MachineAssignment> {
    let d = seg.duration();
    let tol = 1e-9 * d.max(1.0);
    let mut slots: Vec<Vec<MachineSlot>> = vec![Vec::new(); m];
    // `cursor` is the fill position on the current machine, relative to t0.
    let mut machine = 0usize;
    let mut cursor = 0.0_f64;
    for &(job, rate) in seg.rates {
        if rate <= 0.0 {
            continue;
        }
        if rate > speed + tol {
            return None;
        }
        // Busy time on a speed-`speed` machine to deliver rate·d work.
        let mut need = (rate / speed) * d;
        if need > d + tol {
            return None;
        }
        need = need.min(d);
        while need > tol {
            if machine >= m {
                return None; // total capacity exceeded
            }
            let avail = d - cursor;
            let take = need.min(avail);
            if take > tol {
                slots[machine].push(MachineSlot {
                    job,
                    start: seg.t0 + cursor,
                    end: seg.t0 + cursor + take,
                });
            }
            cursor += take;
            need -= take;
            if cursor >= d - tol {
                machine += 1;
                cursor = 0.0;
            }
        }
    }
    Some(MachineAssignment { slots })
}

/// Check the wrap-around invariants on an assignment: within each machine,
/// slots are disjoint and inside the segment; and no job runs on two
/// machines at overlapping times.
pub fn verify_assignment(seg: SegmentRef<'_>, asg: &MachineAssignment) -> Result<(), String> {
    let tol = 1e-9 * seg.duration().max(1.0);
    for (mi, mslots) in asg.slots.iter().enumerate() {
        let mut prev_end = seg.t0 - tol;
        for s in mslots {
            if s.start < prev_end - tol {
                return Err(format!("machine {mi}: overlapping slots at {}", s.start));
            }
            if s.start < seg.t0 - tol || s.end > seg.t1 + tol {
                return Err(format!("machine {mi}: slot outside segment"));
            }
            if s.end <= s.start {
                return Err(format!("machine {mi}: empty/negative slot"));
            }
            prev_end = s.end;
        }
    }
    // Per-job non-parallelism: collect each job's slots and check pairwise
    // disjointness (slot counts per job are tiny — at most 2 under
    // wrap-around).
    let mut per_job: std::collections::BTreeMap<JobId, Vec<(f64, f64)>> = Default::default();
    for mslots in &asg.slots {
        for s in mslots {
            per_job.entry(s.job).or_default().push((s.start, s.end));
        }
    }
    for (job, mut ivs) in per_job {
        ivs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in ivs.windows(2) {
            if w[1].0 < w[0].1 - tol {
                return Err(format!("job {job} runs on two machines simultaneously"));
            }
        }
    }
    Ok(())
}

/// Work delivered to each job by an assignment, at machine speed `speed`.
pub fn delivered_work(
    asg: &MachineAssignment,
    speed: f64,
) -> std::collections::BTreeMap<JobId, f64> {
    let mut out = std::collections::BTreeMap::new();
    for mslots in &asg.slots {
        for s in mslots {
            *out.entry(s.job).or_insert(0.0) += (s.end - s.start) * speed;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::profile::Segment;

    fn seg(t0: f64, t1: f64, rates: &[(JobId, f64)]) -> Segment {
        Segment {
            t0,
            t1,
            rates: rates.to_vec(),
        }
    }

    #[test]
    fn single_job_full_machine() {
        let s = seg(0.0, 2.0, &[(0, 1.0)]);
        let a = wrap_around(s.as_ref(), 1, 1.0).unwrap();
        verify_assignment(s.as_ref(), &a).unwrap();
        assert_eq!(
            a.slots[0],
            vec![MachineSlot {
                job: 0,
                start: 0.0,
                end: 2.0
            }]
        );
    }

    #[test]
    fn rr_three_jobs_two_machines_wraps() {
        // RR with n=3, m=2: each rate 2/3 over duration 3 → 2 busy-units per
        // job, 6 total = exactly 2 machines × 3.
        let s = seg(0.0, 3.0, &[(0, 2.0 / 3.0), (1, 2.0 / 3.0), (2, 2.0 / 3.0)]);
        let a = wrap_around(s.as_ref(), 2, 1.0).unwrap();
        verify_assignment(s.as_ref(), &a).unwrap();
        let w = delivered_work(&a, 1.0);
        for j in 0..3u32 {
            assert!((w[&j] - 2.0).abs() < 1e-9, "job {j}: {}", w[&j]);
        }
        // Job 1 is the one that wraps: split across machines 0 and 1.
        let slots1: Vec<_> = a.slots.iter().flatten().filter(|sl| sl.job == 1).collect();
        assert_eq!(slots1.len(), 2);
    }

    #[test]
    fn respects_speed_scaling() {
        // Speed 2: a rate-1.0 job only needs half the wall-clock.
        let s = seg(0.0, 4.0, &[(0, 1.0), (1, 1.0)]);
        let a = wrap_around(s.as_ref(), 1, 2.0).unwrap();
        verify_assignment(s.as_ref(), &a).unwrap();
        let w = delivered_work(&a, 2.0);
        assert!((w[&0] - 4.0).abs() < 1e-9);
        assert!((w[&1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_jobs_are_skipped() {
        let s = seg(0.0, 1.0, &[(0, 1.0), (1, 0.0)]);
        let a = wrap_around(s.as_ref(), 1, 1.0).unwrap();
        verify_assignment(s.as_ref(), &a).unwrap();
        assert!(!delivered_work(&a, 1.0).contains_key(&1));
    }

    #[test]
    fn infeasible_rates_are_rejected() {
        // Per-job cap violated.
        let s = seg(0.0, 1.0, &[(0, 1.5)]);
        assert!(wrap_around(s.as_ref(), 2, 1.0).is_none());
        // Total cap violated.
        let s = seg(0.0, 1.0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        assert!(wrap_around(s.as_ref(), 2, 1.0).is_none());
    }

    #[test]
    fn verify_detects_bad_assignments() {
        let s = seg(0.0, 2.0, &[(0, 1.0)]);
        // Job on two machines at once.
        let bad = MachineAssignment {
            slots: vec![
                vec![MachineSlot {
                    job: 0,
                    start: 0.0,
                    end: 1.0,
                }],
                vec![MachineSlot {
                    job: 0,
                    start: 0.5,
                    end: 1.5,
                }],
            ],
        };
        assert!(verify_assignment(s.as_ref(), &bad).is_err());
        // Overlap within one machine.
        let bad = MachineAssignment {
            slots: vec![vec![
                MachineSlot {
                    job: 0,
                    start: 0.0,
                    end: 1.0,
                },
                MachineSlot {
                    job: 0,
                    start: 0.5,
                    end: 1.5,
                },
            ]],
        };
        assert!(verify_assignment(s.as_ref(), &bad).is_err());
    }
}

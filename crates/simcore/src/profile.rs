//! Piecewise-constant schedule profiles.
//!
//! A [`Profile`] is the exact record of what a policy did: a sequence of
//! time segments, each with a constant rate per alive job. Downstream
//! analysis (the dual-fitting machinery in `tf-core`, the schedule
//! validator, fairness time series) consumes profiles rather than
//! re-simulating.
//!
//! Internally the per-segment `(job, rate)` lists live in one flat arena
//! shared by all segments, so recording a segment is an arena append
//! rather than a fresh `Vec` allocation — the engine records one segment
//! per event, and per-event allocation dominated profiling cost before
//! this layout. Segments are exposed as borrowed [`SegmentRef`] views;
//! the owned [`Segment`] remains as a convenience for construction in
//! tests and for single-segment utilities (McNaughton realization).

use crate::job::JobId;
use serde::{Deserialize, Serialize};

/// One maximal interval `[t0, t1)` during which the alive set and all
/// rates are constant — the *owned* form, used to build profiles by hand
/// ([`Profile::from_segments`]) and as input to single-segment utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time.
    pub t0: f64,
    /// Segment end time (`> t0`).
    pub t1: f64,
    /// `(job, rate)` for every alive job, sorted by job id (= arrival
    /// order). Jobs with zero rate are included: aliveness matters to the
    /// analysis even when a job is not being processed.
    pub rates: Vec<(JobId, f64)>,
}

impl Segment {
    /// Borrowed view of this segment.
    #[inline]
    pub fn as_ref(&self) -> SegmentRef<'_> {
        SegmentRef {
            t0: self.t0,
            t1: self.t1,
            rates: &self.rates,
        }
    }

    /// Segment length `t1 − t0`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.as_ref().duration()
    }

    /// Number of alive jobs `n_t` in this segment.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.as_ref().n_alive()
    }

    /// Whether the segment is *overloaded* in the paper's sense
    /// (`|A(t)| ≥ m`, all machines busy under RR).
    #[inline]
    pub fn overloaded(&self, m: usize) -> bool {
        self.as_ref().overloaded(m)
    }

    /// Rate of `job` in this segment, or `None` if it is not alive here.
    pub fn rate_of(&self, job: JobId) -> Option<f64> {
        self.as_ref().rate_of(job)
    }

    /// Total processing rate in this segment.
    pub fn total_rate(&self) -> f64 {
        self.as_ref().total_rate()
    }
}

/// Borrowed view of one profile segment: times plus a slice into the
/// profile's rate arena. `Copy`, so iteration hands these out by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentRef<'a> {
    /// Segment start time.
    pub t0: f64,
    /// Segment end time (`> t0`).
    pub t1: f64,
    /// `(job, rate)` per alive job, sorted by job id (= arrival order).
    pub rates: &'a [(JobId, f64)],
}

impl SegmentRef<'_> {
    /// Segment length `t1 − t0`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Number of alive jobs `n_t` in this segment.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.rates.len()
    }

    /// Whether the segment is *overloaded* in the paper's sense
    /// (`|A(t)| ≥ m`, all machines busy under RR).
    #[inline]
    pub fn overloaded(&self, m: usize) -> bool {
        self.rates.len() >= m
    }

    /// Rate of `job` in this segment, or `None` if it is not alive here.
    pub fn rate_of(&self, job: JobId) -> Option<f64> {
        self.rates
            .binary_search_by_key(&job, |&(id, _)| id)
            .ok()
            .map(|i| self.rates[i].1)
    }

    /// Total processing rate in this segment.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|&(_, r)| r).sum()
    }

    /// Owned copy of this segment.
    pub fn to_owned(&self) -> Segment {
        Segment {
            t0: self.t0,
            t1: self.t1,
            rates: self.rates.to_vec(),
        }
    }
}

/// Index entry of one segment: its times and its slice of the arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Span {
    t0: f64,
    t1: f64,
    /// First entry in the arena.
    start: usize,
    /// Number of arena entries (= alive jobs).
    len: usize,
}

/// The complete piecewise-constant execution record of one simulation.
///
/// Segments are contiguous and ordered: `segment(i).t1 == segment(i+1).t0`
/// except across idle gaps (no alive jobs), which are omitted. Access them
/// through [`Profile::segments`] / [`Profile::segment`]; the backing
/// storage is a flat arena, not per-segment vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profile {
    /// Per-segment index into `arena`.
    spans: Vec<Span>,
    /// All segments' `(job, rate)` entries, back to back.
    arena: Vec<(JobId, f64)>,
    /// Machine count the schedule ran on.
    pub m: usize,
    /// Machine speed the schedule ran at.
    pub speed: f64,
}

impl Profile {
    /// An empty profile for the given machine environment.
    pub fn new(m: usize, speed: f64) -> Self {
        Profile {
            spans: Vec::new(),
            arena: Vec::new(),
            m,
            speed,
        }
    }

    /// Build a profile from owned segments (test/bench convenience; the
    /// engine records directly into the arena via [`Profile::push`]).
    pub fn from_segments(segments: Vec<Segment>, m: usize, speed: f64) -> Self {
        let mut p = Profile::new(m, speed);
        for s in segments {
            p.push(s.t0, s.t1, s.rates);
        }
        p
    }

    /// Append a segment: `(job, rate)` entries go into the shared arena,
    /// so the only per-call cost is an amortized slice append.
    pub fn push(&mut self, t0: f64, t1: f64, rates: impl IntoIterator<Item = (JobId, f64)>) {
        let start = self.arena.len();
        self.arena.extend(rates);
        self.spans.push(Span {
            t0,
            t1,
            start,
            len: self.arena.len() - start,
        });
    }

    /// Extend the last segment's end to `t` if `t` is beyond it. The
    /// engine uses this to keep the profile contiguous after snapping time
    /// exactly onto an arrival instant; the adjustment is floating-point
    /// noise by construction (asserted at the call site).
    pub fn stretch_last_end(&mut self, t: f64) {
        if let Some(s) = self.spans.last_mut() {
            s.t1 = s.t1.max(t);
        }
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True iff the profile has no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th segment.
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[inline]
    pub fn segment(&self, i: usize) -> SegmentRef<'_> {
        let s = &self.spans[i];
        SegmentRef {
            t0: s.t0,
            t1: s.t1,
            rates: &self.arena[s.start..s.start + s.len],
        }
    }

    /// Iterate over all segments in time order.
    pub fn segments(&self) -> Segments<'_> {
        Segments {
            profile: self,
            front: 0,
            back: self.spans.len(),
        }
    }

    /// The first segment, if any.
    pub fn first(&self) -> Option<SegmentRef<'_>> {
        (!self.is_empty()).then(|| self.segment(0))
    }

    /// The last segment, if any.
    pub fn last(&self) -> Option<SegmentRef<'_>> {
        self.len().checked_sub(1).map(|i| self.segment(i))
    }

    /// Mutable access to the `i`-th segment's `(job, rate)` entries —
    /// for tests that tamper with recorded profiles to exercise
    /// validators. Not used by the engine.
    pub fn rates_mut(&mut self, i: usize) -> &mut [(JobId, f64)] {
        let s = &self.spans[i];
        &mut self.arena[s.start..s.start + s.len]
    }

    /// Total work processed across all segments (`Σ rate·duration`).
    pub fn total_work(&self) -> f64 {
        self.segments().map(|s| s.total_rate() * s.duration()).sum()
    }

    /// Work received by `job` over the whole profile.
    pub fn work_of(&self, job: JobId) -> f64 {
        self.segments()
            .filter_map(|s| s.rate_of(job).map(|r| r * s.duration()))
            .sum()
    }

    /// The segment covering time `t` (segments are half-open `[t0, t1)`),
    /// or `None` during idle gaps / outside the horizon.
    pub fn segment_at(&self, t: f64) -> Option<SegmentRef<'_>> {
        let i = self.spans.partition_point(|s| s.t1 <= t);
        (i < self.spans.len())
            .then(|| self.segment(i))
            .filter(|s| s.t0 <= t && t < s.t1)
    }

    /// Number of alive jobs at time `t` (0 during idle gaps).
    pub fn n_alive_at(&self, t: f64) -> usize {
        self.segment_at(t).map_or(0, |s| s.n_alive())
    }

    /// End of the last segment (makespan), or 0 for an empty profile.
    pub fn end(&self) -> f64 {
        self.spans.last().map_or(0.0, |s| s.t1)
    }

    /// Merge adjacent segments with identical alive sets and rates;
    /// the engine already emits maximal segments for piecewise-constant
    /// policies, but adaptive stepping of continuous policies produces many
    /// splittable neighbors. `rate_tol` is the absolute per-job tolerance
    /// for "identical". Compacts the arena as a side effect.
    pub fn coalesce(&mut self, rate_tol: f64) {
        let mut spans: Vec<Span> = Vec::with_capacity(self.spans.len());
        let mut arena: Vec<(JobId, f64)> = Vec::with_capacity(self.arena.len());
        for s in &self.spans {
            let rates = &self.arena[s.start..s.start + s.len];
            let mergeable = spans.last().is_some_and(|last: &Span| {
                last.t1 == s.t0
                    && last.len == s.len
                    && arena[last.start..last.start + last.len]
                        .iter()
                        .zip(rates)
                        .all(|(&(i1, r1), &(i2, r2))| i1 == i2 && (r1 - r2).abs() <= rate_tol)
            });
            if mergeable {
                spans.last_mut().unwrap().t1 = s.t1;
            } else {
                let start = arena.len();
                arena.extend_from_slice(rates);
                spans.push(Span {
                    t0: s.t0,
                    t1: s.t1,
                    start,
                    len: s.len,
                });
            }
        }
        self.spans = spans;
        self.arena = arena;
    }

    /// Per-job alive interval `[r_j, C_j]` inferred from the profile:
    /// first and last segment in which the job appears. Returns `None` if
    /// the job never appears.
    pub fn alive_interval(&self, job: JobId) -> Option<(f64, f64)> {
        let mut first = None;
        let mut last = None;
        for s in self.segments() {
            if s.rate_of(job).is_some() {
                if first.is_none() {
                    first = Some(s.t0);
                }
                last = Some(s.t1);
            }
        }
        Some((first?, last?))
    }
}

/// Equality is over the *logical* segments, independent of arena layout
/// (coalescing or hand-construction may pack the arena differently).
impl PartialEq for Profile {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m
            && self.speed == other.speed
            && self.len() == other.len()
            && self.segments().zip(other.segments()).all(|(a, b)| a == b)
    }
}

/// Iterator over a profile's segments (see [`Profile::segments`]).
pub struct Segments<'a> {
    profile: &'a Profile,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Segments<'a> {
    type Item = SegmentRef<'a>;

    fn next(&mut self) -> Option<SegmentRef<'a>> {
        (self.front < self.back).then(|| {
            let s = self.profile.segment(self.front);
            self.front += 1;
            s
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Segments<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        (self.front < self.back).then(|| {
            self.back -= 1;
            self.profile.segment(self.back)
        })
    }
}

impl ExactSizeIterator for Segments<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, t1: f64, rates: &[(JobId, f64)]) -> Segment {
        Segment {
            t0,
            t1,
            rates: rates.to_vec(),
        }
    }

    fn profile(segs: Vec<Segment>) -> Profile {
        Profile::from_segments(segs, 1, 1.0)
    }

    #[test]
    fn segment_accessors() {
        let s = seg(1.0, 3.0, &[(0, 0.5), (2, 0.25)]);
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.n_alive(), 2);
        assert_eq!(s.rate_of(0), Some(0.5));
        assert_eq!(s.rate_of(1), None);
        assert_eq!(s.rate_of(2), Some(0.25));
        assert_eq!(s.total_rate(), 0.75);
        assert!(s.overloaded(2));
        assert!(!s.overloaded(3));
        // The borrowed view agrees with the owned segment.
        let r = s.as_ref();
        assert_eq!(r.to_owned(), s);
    }

    #[test]
    fn work_accounting() {
        let p = profile(vec![
            seg(0.0, 2.0, &[(0, 1.0)]),
            seg(2.0, 4.0, &[(0, 0.5), (1, 0.5)]),
        ]);
        assert!((p.total_work() - 4.0).abs() < 1e-12);
        assert!((p.work_of(0) - 3.0).abs() < 1e-12);
        assert!((p.work_of(1) - 1.0).abs() < 1e-12);
        assert_eq!(p.work_of(9), 0.0);
        assert_eq!(p.end(), 4.0);
    }

    #[test]
    fn segment_lookup_handles_gaps() {
        let p = profile(vec![seg(0.0, 1.0, &[(0, 1.0)]), seg(5.0, 6.0, &[(1, 1.0)])]);
        assert_eq!(p.n_alive_at(0.5), 1);
        assert_eq!(p.n_alive_at(3.0), 0); // idle gap
        assert_eq!(p.n_alive_at(5.0), 1);
        assert_eq!(p.n_alive_at(6.0), 0); // half-open at the end
        assert!(p.segment_at(0.999999).is_some());
        assert!(p.segment_at(1.0).is_none());
    }

    #[test]
    fn coalesce_merges_identical_neighbors() {
        let mut p = profile(vec![
            seg(0.0, 1.0, &[(0, 0.5), (1, 0.5)]),
            seg(1.0, 2.0, &[(0, 0.5), (1, 0.5)]),
            seg(2.0, 3.0, &[(0, 1.0)]),
        ]);
        p.coalesce(1e-12);
        assert_eq!(p.len(), 2);
        assert_eq!(p.segment(0).t1, 2.0);
        // Coalescing compacted the arena: 2 + 1 entries remain.
        assert_eq!(p.segments().map(|s| s.n_alive()).sum::<usize>(), 3);
    }

    #[test]
    fn coalesce_respects_gaps_and_rate_differences() {
        let mut p = profile(vec![
            seg(0.0, 1.0, &[(0, 0.5)]),
            seg(2.0, 3.0, &[(0, 0.5)]), // gap: no merge
            seg(3.0, 4.0, &[(0, 0.6)]), // different rate: no merge
        ]);
        p.coalesce(1e-12);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn alive_interval_spans_zero_rate_segments() {
        let p = profile(vec![
            seg(0.0, 1.0, &[(0, 1.0), (1, 0.0)]),
            seg(1.0, 2.0, &[(1, 1.0)]),
        ]);
        assert_eq!(p.alive_interval(1), Some((0.0, 2.0)));
        assert_eq!(p.alive_interval(0), Some((0.0, 1.0)));
        assert_eq!(p.alive_interval(7), None);
    }

    #[test]
    fn push_and_iterate() {
        let mut p = Profile::new(2, 1.5);
        p.push(0.0, 1.0, [(0, 1.0), (1, 0.5)]);
        p.push(1.0, 2.5, [(1, 1.0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.segments().len(), 2);
        let segs: Vec<_> = p.segments().collect();
        assert_eq!(segs[0].rates, [(0, 1.0), (1, 0.5)]);
        assert_eq!(segs[1].rates, [(1, 1.0)]);
        // Reverse iteration sees the same segments.
        let rev: Vec<_> = p.segments().rev().collect();
        assert_eq!(rev[0], segs[1]);
        assert_eq!(rev[1], segs[0]);
        assert_eq!(p.first().unwrap(), segs[0]);
        assert_eq!(p.last().unwrap(), segs[1]);
    }

    #[test]
    fn stretch_last_end_only_grows() {
        let mut p = Profile::new(1, 1.0);
        p.stretch_last_end(5.0); // no segments: no-op
        assert!(p.is_empty());
        p.push(0.0, 1.0, [(0, 1.0)]);
        p.stretch_last_end(0.5); // earlier than t1: no-op
        assert_eq!(p.last().unwrap().t1, 1.0);
        p.stretch_last_end(1.25);
        assert_eq!(p.last().unwrap().t1, 1.25);
    }

    #[test]
    fn logical_equality_ignores_arena_layout() {
        let a = profile(vec![seg(0.0, 1.0, &[(0, 0.5)]), seg(1.0, 2.0, &[(0, 0.5)])]);
        let mut b = a.clone();
        b.coalesce(0.0); // no merge possible? identical rates — merges!
        assert_ne!(a, b); // merged: different logical segments
        let mut c = a.clone();
        c.coalesce(-1.0); // negative tolerance: nothing merges, layout same
        assert_eq!(a, c);
    }

    #[test]
    fn serde_roundtrip() {
        let p = profile(vec![
            seg(0.0, 1.5, &[(0, 0.25), (1, 0.75)]),
            seg(1.5, 2.0, &[(1, 1.0)]),
        ]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

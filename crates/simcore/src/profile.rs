//! Piecewise-constant schedule profiles.
//!
//! A [`Profile`] is the exact record of what a policy did: a sequence of
//! time segments, each with a constant rate per alive job. Downstream
//! analysis (the dual-fitting machinery in `tf-core`, the schedule
//! validator, fairness time series) consumes profiles rather than
//! re-simulating.

use crate::job::JobId;
use serde::{Deserialize, Serialize};

/// One maximal interval `[t0, t1)` during which the alive set and all rates
/// are constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time.
    pub t0: f64,
    /// Segment end time (`> t0`).
    pub t1: f64,
    /// `(job, rate)` for every alive job, sorted by job id (= arrival
    /// order). Jobs with zero rate are included: aliveness matters to the
    /// analysis even when a job is not being processed.
    pub rates: Vec<(JobId, f64)>,
}

impl Segment {
    /// Segment length `t1 − t0`.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Number of alive jobs `n_t` in this segment.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.rates.len()
    }

    /// Whether the segment is *overloaded* in the paper's sense
    /// (`|A(t)| ≥ m`, all machines busy under RR).
    #[inline]
    pub fn overloaded(&self, m: usize) -> bool {
        self.rates.len() >= m
    }

    /// Rate of `job` in this segment, or `None` if it is not alive here.
    pub fn rate_of(&self, job: JobId) -> Option<f64> {
        self.rates
            .binary_search_by_key(&job, |&(id, _)| id)
            .ok()
            .map(|i| self.rates[i].1)
    }

    /// Total processing rate in this segment.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|&(_, r)| r).sum()
    }
}

/// The complete piecewise-constant execution record of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Contiguous, ordered segments; `segments[i].t1 == segments[i+1].t0`
    /// except across idle gaps (no alive jobs), which are omitted.
    pub segments: Vec<Segment>,
    /// Machine count the schedule ran on.
    pub m: usize,
    /// Machine speed the schedule ran at.
    pub speed: f64,
}

impl Profile {
    /// Total work processed across all segments (`Σ rate·duration`).
    pub fn total_work(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.total_rate() * s.duration())
            .sum()
    }

    /// Work received by `job` over the whole profile.
    pub fn work_of(&self, job: JobId) -> f64 {
        self.segments
            .iter()
            .filter_map(|s| s.rate_of(job).map(|r| r * s.duration()))
            .sum()
    }

    /// The segment covering time `t` (segments are half-open `[t0, t1)`),
    /// or `None` during idle gaps / outside the horizon.
    pub fn segment_at(&self, t: f64) -> Option<&Segment> {
        let i = self.segments.partition_point(|s| s.t1 <= t);
        self.segments.get(i).filter(|s| s.t0 <= t && t < s.t1)
    }

    /// Number of alive jobs at time `t` (0 during idle gaps).
    pub fn n_alive_at(&self, t: f64) -> usize {
        self.segment_at(t).map_or(0, |s| s.n_alive())
    }

    /// End of the last segment (makespan), or 0 for an empty profile.
    pub fn end(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.t1)
    }

    /// Merge adjacent segments with identical alive sets and rates;
    /// the engine already emits maximal segments for piecewise-constant
    /// policies, but adaptive stepping of continuous policies produces many
    /// splittable neighbors. `rate_tol` is the absolute per-job tolerance
    /// for "identical".
    pub fn coalesce(&mut self, rate_tol: f64) {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            match out.last_mut() {
                Some(last)
                    if last.t1 == seg.t0
                        && last.rates.len() == seg.rates.len()
                        && last
                            .rates
                            .iter()
                            .zip(&seg.rates)
                            .all(|(&(i1, r1), &(i2, r2))| {
                                i1 == i2 && (r1 - r2).abs() <= rate_tol
                            }) =>
                {
                    last.t1 = seg.t1;
                }
                _ => out.push(seg),
            }
        }
        self.segments = out;
    }

    /// Per-job alive interval `[r_j, C_j]` inferred from the profile:
    /// first and last segment in which the job appears. Returns `None` if
    /// the job never appears.
    pub fn alive_interval(&self, job: JobId) -> Option<(f64, f64)> {
        let mut first = None;
        let mut last = None;
        for s in &self.segments {
            if s.rate_of(job).is_some() {
                if first.is_none() {
                    first = Some(s.t0);
                }
                last = Some(s.t1);
            }
        }
        Some((first?, last?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, t1: f64, rates: &[(JobId, f64)]) -> Segment {
        Segment {
            t0,
            t1,
            rates: rates.to_vec(),
        }
    }

    fn profile(segs: Vec<Segment>) -> Profile {
        Profile {
            segments: segs,
            m: 1,
            speed: 1.0,
        }
    }

    #[test]
    fn segment_accessors() {
        let s = seg(1.0, 3.0, &[(0, 0.5), (2, 0.25)]);
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.n_alive(), 2);
        assert_eq!(s.rate_of(0), Some(0.5));
        assert_eq!(s.rate_of(1), None);
        assert_eq!(s.rate_of(2), Some(0.25));
        assert_eq!(s.total_rate(), 0.75);
        assert!(s.overloaded(2));
        assert!(!s.overloaded(3));
    }

    #[test]
    fn work_accounting() {
        let p = profile(vec![
            seg(0.0, 2.0, &[(0, 1.0)]),
            seg(2.0, 4.0, &[(0, 0.5), (1, 0.5)]),
        ]);
        assert!((p.total_work() - 4.0).abs() < 1e-12);
        assert!((p.work_of(0) - 3.0).abs() < 1e-12);
        assert!((p.work_of(1) - 1.0).abs() < 1e-12);
        assert_eq!(p.work_of(9), 0.0);
        assert_eq!(p.end(), 4.0);
    }

    #[test]
    fn segment_lookup_handles_gaps() {
        let p = profile(vec![seg(0.0, 1.0, &[(0, 1.0)]), seg(5.0, 6.0, &[(1, 1.0)])]);
        assert_eq!(p.n_alive_at(0.5), 1);
        assert_eq!(p.n_alive_at(3.0), 0); // idle gap
        assert_eq!(p.n_alive_at(5.0), 1);
        assert_eq!(p.n_alive_at(6.0), 0); // half-open at the end
        assert!(p.segment_at(0.999999).is_some());
        assert!(p.segment_at(1.0).is_none());
    }

    #[test]
    fn coalesce_merges_identical_neighbors() {
        let mut p = profile(vec![
            seg(0.0, 1.0, &[(0, 0.5), (1, 0.5)]),
            seg(1.0, 2.0, &[(0, 0.5), (1, 0.5)]),
            seg(2.0, 3.0, &[(0, 1.0)]),
        ]);
        p.coalesce(1e-12);
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].t1, 2.0);
    }

    #[test]
    fn coalesce_respects_gaps_and_rate_differences() {
        let mut p = profile(vec![
            seg(0.0, 1.0, &[(0, 0.5)]),
            seg(2.0, 3.0, &[(0, 0.5)]), // gap: no merge
            seg(3.0, 4.0, &[(0, 0.6)]), // different rate: no merge
        ]);
        p.coalesce(1e-12);
        assert_eq!(p.segments.len(), 3);
    }

    #[test]
    fn alive_interval_spans_zero_rate_segments() {
        let p = profile(vec![
            seg(0.0, 1.0, &[(0, 1.0), (1, 0.0)]),
            seg(1.0, 2.0, &[(1, 1.0)]),
        ]);
        assert_eq!(p.alive_interval(1), Some((0.0, 2.0)));
        assert_eq!(p.alive_interval(0), Some((0.0, 1.0)));
        assert_eq!(p.alive_interval(7), None);
    }
}

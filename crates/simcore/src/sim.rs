//! [`Simulation`] — the builder-style front door to the engine.
//!
//! [`crate::simulate`] takes four positional arguments, two of which are
//! almost always defaulted; call sites ended up as
//! `simulate(&trace, &mut rr, MachineConfig::new(1), SimOptions::default())`.
//! The builder names every knob, keeps the common case one line, and folds
//! in the tracing sink so a diagnostic run reads declaratively:
//!
//! ```text
//! Simulation::of(&trace)
//!     .policy(&mut rr)
//!     .machines(2)
//!     .speed(1.5)
//!     .record_profile()
//!     .trace(SinkSpec::Chrome("run.trace.json".into()))
//!     .run()?
//! ```
//!
//! [`Simulation::run`] delegates to [`crate::simulate`], which remains the
//! underlying (and still public) entry point.

use crate::alloc::{MachineConfig, RateAllocator};
use crate::engine::{simulate, SimOptions};
use crate::error::SimError;
use crate::schedule::Schedule;
use crate::trace::Trace;

/// A configured-but-not-yet-run simulation. Build with
/// [`Simulation::of`], chain setters, finish with [`Simulation::run`].
///
/// # Example
///
/// ```
/// use tf_simcore::{AliveJob, MachineConfig, RateAllocator, Simulation, Trace};
///
/// struct Rr;
/// impl RateAllocator for Rr {
///     fn name(&self) -> &'static str {
///         "RR"
///     }
///     fn allocate(&mut self, _t: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
///         let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
///         rates.fill(share);
///     }
/// }
///
/// let trace = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0)]).unwrap();
/// let schedule = Simulation::of(&trace).policy(&mut Rr).run().unwrap();
/// assert!((schedule.total_flow() - 5.0).abs() < 1e-9);
/// ```
#[must_use = "a Simulation does nothing until .run() is called"]
pub struct Simulation<'t, 'p> {
    trace: &'t Trace,
    policy: Option<&'p mut dyn RateAllocator>,
    cfg: MachineConfig,
    opts: SimOptions,
    sink: Option<tf_obs::SinkSpec>,
}

impl<'t, 'p> Simulation<'t, 'p> {
    /// Start building a simulation of `trace`. Defaults: one unit-speed
    /// machine, no profile recording, no tracing, no policy (a policy is
    /// required before [`Simulation::run`]).
    pub fn of(trace: &'t Trace) -> Self {
        Simulation {
            trace,
            policy: None,
            cfg: MachineConfig::new(1),
            opts: SimOptions::default(),
            sink: None,
        }
    }

    /// The scheduling policy to drive (required).
    pub fn policy(mut self, policy: &'p mut dyn RateAllocator) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Number of identical machines (default 1).
    pub fn machines(mut self, m: usize) -> Self {
        self.cfg.m = m;
        self
    }

    /// Per-machine speed for resource augmentation (default 1.0).
    pub fn speed(mut self, speed: f64) -> Self {
        self.cfg.speed = speed;
        self
    }

    /// Replace the whole [`MachineConfig`] at once.
    pub fn config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Record the full piecewise-constant [`crate::Profile`]
    /// (see [`SimOptions::record_profile`]).
    pub fn record_profile(mut self) -> Self {
        self.opts.record_profile = true;
        self
    }

    /// Measure wall-clock time spent in the policy's `allocate`
    /// (see [`SimOptions::time_alloc`]).
    pub fn timed(mut self) -> Self {
        self.opts.time_alloc = true;
        self
    }

    /// Maximum step length for continuously-varying policies
    /// (see [`SimOptions::max_step`]).
    pub fn max_step(mut self, dt: f64) -> Self {
        self.opts.max_step = Some(dt);
        self
    }

    /// Hard cap on engine events (see [`SimOptions::max_events`]).
    pub fn max_events(mut self, budget: u64) -> Self {
        self.opts.max_events = Some(budget);
        self
    }

    /// Replace the whole [`SimOptions`] at once.
    pub fn options(mut self, opts: SimOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Install `sink` as the process-wide tf-obs sink when the simulation
    /// runs, so this run's spans and counters are collected. The sink
    /// stays installed afterwards; call [`tf_obs::flush`] to write the
    /// output file, or install [`tf_obs::SinkSpec::Off`] to stop.
    pub fn trace(mut self, sink: tf_obs::SinkSpec) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Run the simulation via [`crate::simulate`].
    ///
    /// # Panics
    /// If no policy was set with [`Simulation::policy`].
    ///
    /// # Errors
    /// Exactly those of [`crate::simulate`].
    pub fn run(self) -> Result<Schedule, SimError> {
        if let Some(sink) = self.sink {
            tf_obs::install(sink);
        }
        let policy = self
            .policy
            .expect("Simulation::run: no policy set; call .policy(&mut ...) first");
        simulate(self.trace, policy, self.cfg, self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AliveJob;

    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(
            &mut self,
            _now: f64,
            alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
            rates.fill(share);
        }
    }

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn builder_matches_direct_simulate() {
        let t = trace(&[(0.0, 3.0), (0.5, 1.0), (2.0, 2.0)]);
        let via_builder = Simulation::of(&t)
            .policy(&mut Rr)
            .machines(2)
            .speed(1.5)
            .record_profile()
            .run()
            .unwrap();
        let direct = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(2, 1.5),
            SimOptions::with_profile(),
        )
        .unwrap();
        assert_eq!(via_builder.completion, direct.completion);
        assert_eq!(via_builder.events, direct.events);
        assert!(via_builder.profile.is_some());
    }

    #[test]
    fn builder_defaults_are_one_unit_machine() {
        let t = trace(&[(0.0, 2.0)]);
        let s = Simulation::of(&t).policy(&mut Rr).run().unwrap();
        assert!((s.completion[0] - 2.0).abs() < 1e-12);
        assert!(s.profile.is_none());
    }

    #[test]
    #[should_panic(expected = "no policy set")]
    fn builder_without_policy_panics() {
        let t = trace(&[(0.0, 1.0)]);
        let _ = Simulation::of(&t).run();
    }

    #[test]
    fn builder_max_events_cap_applies() {
        let t = trace(&[(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let e = Simulation::of(&t).policy(&mut Rr).max_events(1).run();
        assert!(matches!(e, Err(SimError::EventBudgetExhausted { .. })));
    }
}

#![deny(missing_docs)]

//! # tf-simcore — exact multi-machine scheduling simulation
//!
//! This crate is the substrate for reproducing *Temporal Fairness of Round
//! Robin: Competitive Analysis for Lk-norms of Flow Time* (SPAA 2015). It
//! models the paper's scheduling environment exactly:
//!
//! * `m` **identical machines**, optionally sped up by a factor `s`
//!   (resource augmentation). A feasible schedule assigns each alive job a
//!   processing rate `rate_j ∈ [0, s]` with `Σ_j rate_j ≤ m·s` — the
//!   fractional characterization `{m_j(t)}` from Section 2 of the paper,
//!   scaled by `s`.
//! * **Online arrivals**: job `j` has arrival time `r_j` and size `p_j`;
//!   the scheduler first learns of `j` at `r_j`.
//! * Policies are [`RateAllocator`]s: at any instant they map the set of
//!   alive jobs to rates. Round Robin is `rate_j = s·min(1, m/n_t)`.
//!
//! The engine is **event-driven and exact**: between events (arrivals,
//! completions, policy review points) rates are constant, so the next
//! completion time is computed analytically. There is no time quantization
//! and no integration drift for piecewise-constant policies. Policies whose
//! rates vary continuously in time (e.g. age-weighted Round Robin) declare
//! [`RateAllocator::continuous`] and are integrated with bounded adaptive
//! steps.
//!
//! The engine can record a full [`Profile`] — the piecewise-constant rate
//! trajectory with the alive set per segment — which downstream crates use
//! to evaluate the paper's dual-fitting construction in closed form and to
//! compute exact `ℓk` objectives.
//!
//! A separate [`quantum`] module provides a *discrete* Round Robin with a
//! finite time quantum and context-switch overhead, used to measure how far
//! practical RR deviates from the idealized processor-sharing RR that the
//! paper analyzes.

pub mod alloc;
pub mod engine;
pub mod error;
pub mod gantt;
pub mod job;
pub mod mcnaughton;
pub mod profile;
pub mod quantum;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod validate;

pub use alloc::{AliveJob, MachineConfig, RateAllocator};
pub use engine::{simulate, SimOptions};
pub use error::SimError;
pub use job::{Job, JobId};
pub use profile::{Profile, Segment, SegmentRef};
pub use schedule::Schedule;
pub use sim::Simulation;
pub use stats::SimStats;
pub use stream::{
    simulate_stream, CompletedJob, JobSource, ProfileWindow, SourcedJob, StreamOptions,
    StreamReport, TraceSource,
};
/// Re-export of the observability layer, so downstream code can reach
/// sinks and the registry without naming `tf_obs` in its own manifest.
pub use tf_obs as obs;
pub use trace::{Trace, TraceBuilder};

/// Relative tolerance used throughout the simulator for floating-point
/// comparisons (completion detection, rate-cap validation).
pub const REL_EPS: f64 = 1e-9;

/// Absolute tolerance floor: quantities below this are treated as zero.
pub const ABS_EPS: f64 = 1e-12;

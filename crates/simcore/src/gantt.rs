//! ASCII Gantt rendering of recorded profiles.
//!
//! Turns a fractional [`Profile`] into a per-machine timetable via
//! McNaughton's wrap-around rule and renders it as text — the quickest way
//! to *see* what a policy did (used by examples and debugging sessions).

use crate::mcnaughton::wrap_around;
use crate::profile::Profile;

/// Character used for idle machine time.
const IDLE: char = '.';

/// Map a job id to a stable display glyph (`0-9a-zA-Z`, then `#`).
pub fn job_glyph(id: u32) -> char {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    GLYPHS.get(id as usize).map_or('#', |&b| b as char)
}

/// Render `profile` as an ASCII Gantt chart with `width` time columns.
///
/// Each machine gets one row; the glyph in a column is the job that
/// machine runs at the column's center instant (per the McNaughton
/// realization of the segment covering it), or `.` if idle. A header row
/// carries the time axis.
///
/// Returns an empty string for an empty profile.
pub fn render_gantt(profile: &Profile, width: usize) -> String {
    let Some(first) = profile.first() else {
        return String::new();
    };
    let t0 = first.t0;
    let t1 = profile.end();
    let span = t1 - t0;
    if span <= 0.0 || width == 0 {
        return String::new();
    }
    let m = profile.m;
    let mut rows = vec![vec![IDLE; width]; m];

    // Indexing by `col` across multiple rows at once; an iterator rewrite
    // would obscure the row/column structure.
    #[allow(clippy::needless_range_loop)]
    for col in 0..width {
        let t = t0 + span * (col as f64 + 0.5) / width as f64;
        let Some(seg) = profile.segment_at(t) else {
            continue;
        };
        let Some(assignment) = wrap_around(seg, m, profile.speed) else {
            continue; // numerically infeasible segment: leave idle
        };
        for (machine, slots) in assignment.slots.iter().enumerate() {
            for slot in slots {
                if slot.start <= t && t < slot.end {
                    rows[machine][col] = job_glyph(slot.job);
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("t = {:.2} .. {:.2} ({} cols)\n", t0, t1, width));
    for (mi, row) in rows.iter().enumerate() {
        out.push_str(&format!("m{mi:<2}|"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AliveJob, MachineConfig, RateAllocator};
    use crate::engine::{simulate, SimOptions};
    use crate::trace::Trace;

    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(&mut self, _: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
            rates.fill(cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0));
        }
    }

    #[test]
    fn glyphs_are_stable_and_bounded() {
        assert_eq!(job_glyph(0), '0');
        assert_eq!(job_glyph(10), 'a');
        assert_eq!(job_glyph(36), 'A');
        assert_eq!(job_glyph(1000), '#');
    }

    #[test]
    fn renders_single_job() {
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let g = render_gantt(s.profile.as_ref().unwrap(), 8);
        assert!(g.contains("m0 |00000000|"), "{g}");
    }

    #[test]
    fn renders_idle_gap() {
        let t = Trace::from_pairs([(0.0, 1.0), (3.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let g = render_gantt(s.profile.as_ref().unwrap(), 8);
        // First quarter job 0, middle idle, last quarter job 1.
        assert!(g.contains("00"), "{g}");
        assert!(g.contains(".."), "{g}");
        assert!(g.contains("11"), "{g}");
    }

    #[test]
    fn renders_two_machines() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(2),
            SimOptions::with_profile(),
        )
        .unwrap();
        let g = render_gantt(s.profile.as_ref().unwrap(), 6);
        assert!(g.lines().count() == 3, "{g}"); // header + 2 machines
        assert!(g.contains("m0 |"));
        assert!(g.contains("m1 |"));
        // Each machine fully busy with one job.
        assert!(g.contains("000000") && g.contains("111111"), "{g}");
    }

    #[test]
    fn empty_profile_renders_empty() {
        let p = Profile::new(1, 1.0);
        assert_eq!(render_gantt(&p, 10), "");
    }
}

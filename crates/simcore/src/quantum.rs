//! Discrete Round Robin with a finite time quantum and context-switch
//! overhead.
//!
//! The paper analyzes the *idealized* RR — instantaneous equal sharing,
//! equivalently the quantum → 0 limit of the textbook scheduler. Real
//! operating systems run RR with a positive quantum `q` and pay a
//! context-switch cost `c` every time a machine switches jobs. This module
//! implements that practical variant so the experiment suite (E12) can
//! measure how quickly the discrete scheduler converges to the
//! processor-sharing ideal as `q → 0`, and how overhead erodes it.
//!
//! Model: a single global FIFO ready queue feeding `m` machines of speed
//! `s`. A machine takes the job at the head of the queue, pays `c` wall
//! clock (if it is switching to a different job than it just ran), runs the
//! job for `min(q, remaining/s)` wall clock, then requeues the job at the
//! tail if unfinished. Arrivals join the tail. Ties between machines are
//! broken by machine index for determinism.

use crate::alloc::MachineConfig;
use crate::error::SimError;
use crate::schedule::Schedule;
use crate::stats::SimStats;
use crate::trace::Trace;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Parameters of the discrete RR scheduler.
#[derive(Debug, Clone, Copy)]
pub struct QuantumOptions {
    /// Time quantum `q > 0` (wall clock a job runs per turn).
    pub quantum: f64,
    /// Context-switch overhead `c ≥ 0` (wall clock paid when a machine
    /// switches to a job different from the one it last ran).
    pub ctx_switch: f64,
}

impl QuantumOptions {
    /// Quantum `q` with zero switch cost.
    pub fn new(quantum: f64) -> Self {
        QuantumOptions {
            quantum,
            ctx_switch: 0.0,
        }
    }
}

#[derive(Debug, PartialEq)]
struct MachineFree {
    at: f64,
    machine: usize,
    /// Job the machine just ran and preempted (unfinished); it re-joins the
    /// ready queue only now — while running it must be invisible to other
    /// machines.
    requeue: Option<u32>,
}

impl Eq for MachineFree {}
impl Ord for MachineFree {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower machine index.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap()
            .then_with(|| other.machine.cmp(&self.machine))
    }
}
impl PartialOrd for MachineFree {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulate discrete RR on `trace`.
///
/// # Errors
/// Rejects invalid configurations (`m = 0`, bad speed, non-positive
/// quantum, negative switch cost).
pub fn simulate_quantum_rr(
    trace: &Trace,
    cfg: MachineConfig,
    opts: QuantumOptions,
) -> Result<Schedule, SimError> {
    cfg.validate()?;
    if !opts.quantum.is_finite() || opts.quantum <= 0.0 {
        return Err(SimError::BadQuantum(opts.quantum));
    }
    if !opts.ctx_switch.is_finite() || opts.ctx_switch < 0.0 {
        return Err(SimError::BadCtxSwitch(opts.ctx_switch));
    }

    let n = trace.len();
    let jobs = trace.jobs();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.size).collect();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];
    let mut last_ran: Vec<Option<u32>> = vec![None; cfg.m];

    let mut ready: VecDeque<u32> = VecDeque::new();
    let mut next_arrival = 0usize;
    let mut free = BinaryHeap::with_capacity(cfg.m);
    for machine in 0..cfg.m {
        free.push(MachineFree {
            at: 0.0,
            machine,
            requeue: None,
        });
    }
    let mut events: u64 = 0;
    let mut done = 0usize;

    // Each iteration dispatches one machine at its free time.
    while let Some(MachineFree {
        at,
        machine,
        requeue,
    }) = free.pop()
    {
        events += 1;
        // Admit arrivals up to `at`, then the preempted job (a job arriving
        // exactly at quantum expiry queues ahead of the preempted job — the
        // textbook convention).
        while next_arrival < n && jobs[next_arrival].arrival <= at {
            ready.push_back(next_arrival as u32);
            next_arrival += 1;
        }
        if let Some(job) = requeue {
            ready.push_back(job);
        }
        if done == n {
            break;
        }
        let Some(job) = ready.pop_front() else {
            if next_arrival < n {
                // Idle this machine until the next arrival.
                free.push(MachineFree {
                    at: jobs[next_arrival].arrival,
                    machine,
                    requeue: None,
                });
            }
            // else: machine retires; when all retire the loop drains.
            continue;
        };
        let j = job as usize;
        let switch = if last_ran[machine] == Some(job) {
            0.0
        } else {
            opts.ctx_switch
        };
        last_ran[machine] = Some(job);
        let run = (remaining[j] / cfg.speed).min(opts.quantum);
        let end = at + switch + run;
        remaining[j] -= run * cfg.speed;
        if remaining[j] <= jobs[j].size * crate::REL_EPS {
            completion[j] = end;
            flow[j] = end - jobs[j].arrival;
            done += 1;
            free.push(MachineFree {
                at: end,
                machine,
                requeue: None,
            });
        } else {
            free.push(MachineFree {
                at: end,
                machine,
                requeue: Some(job),
            });
        }
    }

    Ok(Schedule {
        policy: "QuantumRR".to_string(),
        cfg,
        completion,
        flow,
        profile: None,
        events,
        stats: SimStats::default(),
    })
}

/// Deficit Round Robin (Shreedhar–Varghese \[25\], cited by the paper as
/// a deployed RR-for-fairness system): a single server cycles over the
/// active jobs; each visit adds `quantum · weight_j` to job `j`'s *deficit
/// counter* and serves the job for up to its accumulated deficit, carrying
/// any unused deficit to the next round. With equal weights and a small
/// quantum this converges to processor sharing; unequal weights give
/// weighted fair shares with O(1) work per scheduling decision — the
/// property the original paper is famous for.
///
/// This implementation serves jobs to completion-or-deficit on one
/// machine of speed `cfg.speed` (DRR is a single-link discipline; `m` is
/// required to be 1).
pub fn simulate_drr(trace: &Trace, cfg: MachineConfig, quantum: f64) -> Result<Schedule, SimError> {
    cfg.validate()?;
    if cfg.m != 1 {
        return Err(SimError::NoMachines); // DRR is a single-server discipline
    }
    if !quantum.is_finite() || quantum <= 0.0 {
        return Err(SimError::BadQuantum(quantum));
    }

    let n = trace.len();
    let jobs = trace.jobs();
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.size).collect();
    let mut deficit: Vec<f64> = vec![0.0; n];
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];

    let mut active: VecDeque<u32> = VecDeque::new();
    let mut next_arrival = 0usize;
    let mut time = 0.0f64;
    let mut events = 0u64;
    let mut done = 0usize;

    while done < n {
        // Admit everything that has arrived.
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            active.push_back(next_arrival as u32);
            deficit[next_arrival] = 0.0;
            next_arrival += 1;
        }
        let Some(job) = active.pop_front() else {
            // Idle until the next arrival.
            time = jobs[next_arrival].arrival;
            continue;
        };
        events += 1;
        let j = job as usize;
        deficit[j] += quantum * jobs[j].weight;
        let serve_work = deficit[j].min(remaining[j]);
        let dt = serve_work / cfg.speed;

        // Serve, admitting arrivals that land mid-service behind us.
        time += dt;
        remaining[j] -= serve_work;
        deficit[j] -= serve_work;
        while next_arrival < n && jobs[next_arrival].arrival <= time {
            active.push_back(next_arrival as u32);
            deficit[next_arrival] = 0.0;
            next_arrival += 1;
        }
        if remaining[j] <= jobs[j].size * crate::REL_EPS {
            completion[j] = time;
            flow[j] = time - jobs[j].arrival;
            deficit[j] = 0.0;
            done += 1;
        } else {
            active.push_back(job);
        }
    }

    Ok(Schedule {
        policy: "DRR".to_string(),
        cfg,
        completion,
        flow,
        profile: None,
        events,
        stats: SimStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn single_job_runs_in_quanta() {
        let t = trace(&[(0.0, 1.0)]);
        let s = simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(0.25)).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternation_of_two_jobs() {
        // Two unit jobs, q=0.5: A runs [0,.5), B [.5,1), A [1,1.5) done,
        // B [1.5,2) done.
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(0.5)).unwrap();
        assert!((s.completion[0] - 1.5).abs() < 1e-12);
        assert!((s.completion[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn context_switch_overhead_delays() {
        // Same as above with c=0.1: switches at every dispatch (first
        // dispatch also pays: cold start). Sequence:
        // A: .1 switch + .5 run → 0.6; B: .1+.5 → 1.2; A: .1+.5 → 1.8;
        // B: .1+.5 → 2.4.
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let opts = QuantumOptions {
            quantum: 0.5,
            ctx_switch: 0.1,
        };
        let s = simulate_quantum_rr(&t, MachineConfig::new(1), opts).unwrap();
        assert!((s.completion[0] - 1.8).abs() < 1e-12);
        assert!((s.completion[1] - 2.4).abs() < 1e-12);
    }

    #[test]
    fn no_switch_cost_when_rerunning_same_job() {
        // One job alone: only the initial switch is paid.
        let t = trace(&[(0.0, 1.0)]);
        let opts = QuantumOptions {
            quantum: 0.25,
            ctx_switch: 0.1,
        };
        let s = simulate_quantum_rr(&t, MachineConfig::new(1), opts).unwrap();
        assert!((s.completion[0] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn multiple_machines_run_in_parallel() {
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = simulate_quantum_rr(&t, MachineConfig::new(2), QuantumOptions::new(0.5)).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
        assert!((s.completion[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_processor_sharing_as_quantum_shrinks() {
        // Ideal RR on (0,1),(0,2): completions 2 and 3 (engine test proves
        // this); quantum RR must approach them.
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let fine =
            simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(1e-3)).unwrap();
        assert!((fine.completion[0] - 2.0).abs() < 5e-3);
        assert!((fine.completion[1] - 3.0).abs() < 5e-3);
        let coarse =
            simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(0.5)).unwrap();
        let err_fine = (fine.completion[0] - 2.0).abs() + (fine.completion[1] - 3.0).abs();
        let err_coarse = (coarse.completion[0] - 2.0).abs() + (coarse.completion[1] - 3.0).abs();
        assert!(err_fine <= err_coarse + 1e-12);
    }

    #[test]
    fn arrivals_join_the_tail() {
        // A (r=0,p=1), B (r=0.5,p=0.5), q=0.5:
        // A [0,.5); B arrives at .5 and was admitted before A requeues →
        // B runs [.5,1) done at 1.0; A runs [1,1.5) done.
        let t = trace(&[(0.0, 1.0), (0.5, 0.5)]);
        let s = simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(0.5)).unwrap();
        assert!((s.completion[1] - 1.0).abs() < 1e-12);
        assert!((s.completion[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speed_scales_work_not_overheads() {
        let t = trace(&[(0.0, 2.0)]);
        let opts = QuantumOptions {
            quantum: 10.0,
            ctx_switch: 0.5,
        };
        let s = simulate_quantum_rr(&t, MachineConfig::with_speed(1, 2.0), opts).unwrap();
        // .5 switch + 1.0 run (2 work at speed 2).
        assert!((s.completion[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_options() {
        // Regression: these used to surface as BadSpeed, a misleading
        // diagnostic ("speed 0 must be finite and positive" for a bad
        // quantum). The dedicated variants name the offending field.
        let t = trace(&[(0.0, 1.0)]);
        assert!(matches!(
            simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(0.0)),
            Err(SimError::BadQuantum(q)) if q == 0.0
        ));
        assert!(matches!(
            simulate_quantum_rr(&t, MachineConfig::new(1), QuantumOptions::new(f64::NAN)),
            Err(SimError::BadQuantum(_))
        ));
        let bad = QuantumOptions {
            quantum: 1.0,
            ctx_switch: -1.0,
        };
        assert!(matches!(
            simulate_quantum_rr(&t, MachineConfig::new(1), bad),
            Err(SimError::BadCtxSwitch(c)) if c == -1.0
        ));
        let msg = SimError::BadQuantum(0.0).to_string();
        assert!(
            msg.contains("quantum"),
            "diagnostic should name the field: {msg}"
        );
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = simulate_quantum_rr(&t, MachineConfig::new(2), QuantumOptions::new(1.0)).unwrap();
        assert!(s.is_empty());
    }

    // ---- Deficit Round Robin ----------------------------------------------

    #[test]
    fn drr_equal_weights_matches_quantum_rr_shape() {
        // Two unit jobs, quantum 0.5, equal weights: A [0,.5), B [.5,1),
        // A [1,1.5) done, B done at 2 — same as quantum RR.
        let t = trace(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = simulate_drr(&t, MachineConfig::new(1), 0.5).unwrap();
        assert!((s.completion[0] - 1.5).abs() < 1e-12);
        assert!((s.completion[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drr_weights_bias_service() {
        // Job 0 weight 3, job 1 weight 1, both size 3, quantum 1.
        // Per round job0 serves 3, job1 serves 1 → job0 finishes after
        // round 1 (t=4? sequence: j0 serves 3 [0,3), j1 serves 1 [3,4);
        // j1 then alone: serves 1 per visit: done at 6.
        let mut b = crate::trace::TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 3.0);
        b.push_weighted(0.0, 3.0, 1.0);
        let t = b.build().unwrap();
        let s = simulate_drr(&t, MachineConfig::new(1), 1.0).unwrap();
        assert!((s.completion[0] - 3.0).abs() < 1e-12, "{}", s.completion[0]);
        assert!((s.completion[1] - 6.0).abs() < 1e-12, "{}", s.completion[1]);
    }

    #[test]
    fn drr_deficit_carries_over() {
        // Size 1.5, quantum 1: first visit serves 1 (deficit 0 left),
        // second visit deficit 1 → serves remaining 0.5.
        let t = trace(&[(0.0, 1.5), (0.0, 1.5)]);
        let s = simulate_drr(&t, MachineConfig::new(1), 1.0).unwrap();
        // Visits: j0 serves 1 [0,1), j1 serves 1 [1,2), j0 serves .5 done
        // at 2.5, j1 done at 3.
        assert!((s.completion[0] - 2.5).abs() < 1e-12);
        assert!((s.completion[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn drr_converges_to_processor_sharing() {
        let t = trace(&[(0.0, 1.0), (0.0, 2.0)]);
        let s = simulate_drr(&t, MachineConfig::new(1), 1e-3).unwrap();
        assert!((s.completion[0] - 2.0).abs() < 5e-3);
        assert!((s.completion[1] - 3.0).abs() < 5e-3);
    }

    #[test]
    fn drr_respects_speed_and_rejects_bad_config() {
        let t = trace(&[(0.0, 2.0)]);
        let s = simulate_drr(&t, MachineConfig::with_speed(1, 2.0), 1.0).unwrap();
        assert!((s.completion[0] - 1.0).abs() < 1e-12);
        assert!(simulate_drr(&t, MachineConfig::new(2), 1.0).is_err());
        assert!(matches!(
            simulate_drr(&t, MachineConfig::new(1), 0.0),
            Err(SimError::BadQuantum(q)) if q == 0.0
        ));
    }

    #[test]
    fn drr_idles_until_arrivals() {
        let t = trace(&[(5.0, 1.0)]);
        let s = simulate_drr(&t, MachineConfig::new(1), 0.25).unwrap();
        assert!((s.completion[0] - 6.0).abs() < 1e-12);
    }
}

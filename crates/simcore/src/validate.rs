//! End-to-end schedule validation.
//!
//! Given a [`Trace`], a [`Schedule`] and its recorded [`Profile`], check
//! every feasibility and accounting invariant of the model in Section 2 of
//! the paper. Used by tests and by the harness to certify that measured
//! objectives come from feasible schedules.

use crate::alloc::MachineConfig;
use crate::profile::Profile;
use crate::schedule::Schedule;
use crate::trace::Trace;

/// Result of validating a schedule; `issues` is empty iff the schedule
/// passed every check.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Human-readable descriptions of each violated invariant.
    pub issues: Vec<String>,
}

impl ValidationReport {
    /// True iff no invariant was violated.
    pub fn ok(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Validate `sched` (which must carry a profile) against `trace`.
///
/// Checks, with relative tolerance `rel_tol`:
/// 1. every job has a finite completion and `flow = completion − arrival`;
/// 2. no job completes before `arrival + size/speed` (cap: one machine);
/// 3. per-segment: rates within `[0, s]`, total within `m·s`;
/// 4. per-job delivered work equals its size;
/// 5. jobs are processed only while alive (`[arrival, completion]`);
/// 6. the alive set in each segment is exactly the set of released,
///    uncompleted jobs (as the engine defines it).
pub fn validate_schedule(trace: &Trace, sched: &Schedule, rel_tol: f64) -> ValidationReport {
    let mut rep = ValidationReport::default();
    let cfg: MachineConfig = sched.cfg;
    let scale = trace.makespan_upper_bound(cfg.speed).max(1.0);
    let ttol = rel_tol * scale;

    if sched.completion.len() != trace.len() || sched.flow.len() != trace.len() {
        rep.issues.push(format!(
            "schedule covers {} jobs, trace has {}",
            sched.completion.len(),
            trace.len()
        ));
        return rep;
    }

    for j in trace.jobs() {
        let c = sched.completion[j.id as usize];
        let f = sched.flow[j.id as usize];
        if !c.is_finite() {
            rep.issues.push(format!("job {}: never completed", j.id));
            continue;
        }
        if (f - (c - j.arrival)).abs() > ttol {
            rep.issues.push(format!(
                "job {}: flow {} != completion-arrival {}",
                j.id,
                f,
                c - j.arrival
            ));
        }
        let min_c = j.arrival + j.size / cfg.speed;
        if c < min_c - ttol {
            rep.issues.push(format!(
                "job {}: completes at {} before physical minimum {}",
                j.id, c, min_c
            ));
        }
    }

    let Some(profile) = sched.profile.as_ref() else {
        rep.issues
            .push("schedule has no recorded profile".to_string());
        return rep;
    };
    validate_profile_against(trace, sched, profile, rel_tol, ttol, &mut rep);
    rep
}

fn validate_profile_against(
    trace: &Trace,
    sched: &Schedule,
    profile: &Profile,
    rel_tol: f64,
    ttol: f64,
    rep: &mut ValidationReport,
) {
    let cfg = sched.cfg;
    let cap = cfg.job_cap();
    let total_cap = cfg.total_cap();
    let rtol = rel_tol * cap.max(1.0);

    let mut prev_end: Option<f64> = None;
    for (si, seg) in profile.segments().enumerate() {
        if seg.t1 <= seg.t0 {
            rep.issues
                .push(format!("segment {si}: non-positive duration"));
        }
        if let Some(pe) = prev_end {
            if seg.t0 < pe - rtol {
                rep.issues.push(format!(
                    "segment {si}: overlaps previous (t0={} < {})",
                    seg.t0, pe
                ));
            }
        }
        prev_end = Some(seg.t1);

        let mut total = 0.0;
        for &(id, r) in seg.rates {
            if !(0.0 - rtol..=cap + rtol).contains(&r) {
                rep.issues
                    .push(format!("segment {si}: job {id} rate {r} outside [0,{cap}]"));
            }
            total += r;
            let j = trace.job(id);
            // Processed (indeed, alive) only within [arrival, completion].
            let mid = 0.5 * (seg.t0 + seg.t1);
            let c = sched.completion[id as usize];
            if mid < j.arrival || (c.is_finite() && mid > c + rel_tol * c.max(1.0)) {
                rep.issues.push(format!(
                    "segment {si}: job {id} alive at t≈{mid} outside [{}, {}]",
                    j.arrival, c
                ));
            }
        }
        if total > total_cap + rtol * (seg.rates.len() as f64).max(1.0) {
            rep.issues.push(format!(
                "segment {si}: total rate {total} exceeds {total_cap}"
            ));
        }
        // Alive-set completeness: every released, uncompleted job must be in
        // the segment (the engine exposes all alive jobs to the policy).
        // Membership is decided at the segment *endpoints* with the time
        // tolerance, and sliver segments shorter than the tolerance are
        // skipped entirely: the engine cuts segments at every arrival and
        // completion, so a job belongs to a segment iff it arrives by its
        // start and completes no earlier than its end — but when a
        // completion lands a rounding error before an arrival, the engine
        // legitimately emits a sub-tolerance sliver on whose boundary
        // membership is ambiguous (found by the tf-audit fuzzer on AgedRR
        // and MLFQ, whose review points make such slivers routine).
        if seg.t1 - seg.t0 > ttol {
            for j in trace.jobs() {
                let c = sched.completion[j.id as usize];
                let alive = j.arrival <= seg.t0 + ttol && (!c.is_finite() || c >= seg.t1 - ttol);
                if alive && seg.rate_of(j.id).is_none() {
                    rep.issues.push(format!(
                        "segment {si}: alive job {} missing from segment",
                        j.id
                    ));
                }
            }
        }
    }

    // Work conservation per job.
    for j in trace.jobs() {
        let w = profile.work_of(j.id);
        if (w - j.size).abs() > rel_tol * j.size.max(1.0) {
            rep.issues.push(format!(
                "job {}: delivered work {} != size {}",
                j.id, w, j.size
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AliveJob, RateAllocator};
    use crate::engine::{simulate, SimOptions};

    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(&mut self, _: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
            let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
            rates.fill(share);
        }
    }

    #[test]
    fn valid_rr_schedule_passes() {
        let t = Trace::from_pairs([(0.0, 1.0), (0.5, 2.0), (0.5, 0.25), (3.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::with_speed(2, 1.5),
            SimOptions::with_profile(),
        )
        .unwrap();
        let rep = validate_schedule(&t, &s, 1e-7);
        assert!(rep.ok(), "{:?}", rep.issues);
    }

    #[test]
    fn missing_profile_is_flagged() {
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        let rep = validate_schedule(&t, &s, 1e-7);
        assert!(!rep.ok());
        assert!(rep.issues[0].contains("profile"));
    }

    #[test]
    fn tampered_completion_is_flagged() {
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let mut s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        s.completion[0] = 0.5; // before arrival + size/speed = 2.0
        s.flow[0] = 0.5;
        let rep = validate_schedule(&t, &s, 1e-7);
        assert!(rep.issues.iter().any(|i| i.contains("physical minimum")));
    }

    #[test]
    fn tampered_profile_rate_is_flagged() {
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let mut s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        s.profile.as_mut().unwrap().rates_mut(0)[0].1 = 5.0;
        let rep = validate_schedule(&t, &s, 1e-7);
        assert!(rep.issues.iter().any(|i| i.contains("outside [0,")));
    }

    #[test]
    fn wrong_job_count_is_flagged() {
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let small = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = simulate(
            &small,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let rep = validate_schedule(&t, &s, 1e-7);
        assert!(!rep.ok());
    }
}

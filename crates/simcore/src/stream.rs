//! Streaming simulation: open workloads in bounded memory.
//!
//! [`crate::simulate`] materialises the whole instance up front — a
//! [`crate::Trace`] plus dense completion/flow vectors plus (optionally) a
//! full [`crate::Profile`]. That caps experiments at the memory of the
//! trace, far below the "millions of jobs" regime heavy-traffic questions
//! live in. This module provides the unbounded-`n` path:
//!
//! * [`JobSource`] — a pull-based generator of jobs in arrival order; the
//!   engine materialises at most **one** not-yet-arrived job at a time.
//! * [`simulate_stream`] — the same exact event loop as
//!   [`crate::simulate`] (identical step selection, identical arithmetic,
//!   so closed traces replay **bit-identically** — pinned by the golden
//!   tests in `tf-harness`), but completed jobs are *retired*: their
//!   completion is handed to a caller-supplied sink and their state is
//!   dropped. Memory is `O(peak alive set + window)`, independent of the
//!   number of jobs streamed.
//! * [`ProfileWindow`] — a ring buffer retaining the execution profile
//!   only over a trailing time window, for dual-fitting-style analyses
//!   over a sliding horizon.
//!
//! Flow-time statistics over the full stream are computed by feeding the
//! sink into the mergeable streaming accumulators of `tf-metrics`
//! (`StreamingFlowStats`, `StreamingNorm`), which never need the
//! completion vector either.

use crate::alloc::{check_rates, AliveJob, MachineConfig, RateAllocator};
use crate::error::SimError;
use crate::job::JobId;
use crate::profile::{Segment, SegmentRef};
use crate::stats::SimStats;
use crate::trace::Trace;
use crate::{ABS_EPS, REL_EPS};
use std::collections::VecDeque;
use std::time::Instant;

/// One job emitted by a [`JobSource`]: everything a [`crate::Job`] carries
/// except the id, which the streaming engine assigns densely in emission
/// order (so ids equal arrival ranks, exactly as in a [`Trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcedJob {
    /// Arrival time `r_j`; must be non-decreasing across the stream.
    pub arrival: f64,
    /// Size `p_j`; finite and positive.
    pub size: f64,
    /// Weight; finite and positive (1.0 in the unweighted setting).
    pub weight: f64,
}

impl SourcedJob {
    /// An unweighted job.
    pub fn new(arrival: f64, size: f64) -> Self {
        SourcedJob {
            arrival,
            size,
            weight: 1.0,
        }
    }
}

/// A pull-based source of jobs in non-decreasing arrival order.
///
/// The engine validates every emitted job (finite positive size/weight,
/// finite non-decreasing arrival) and fails the run with the same typed
/// [`SimError`]s the [`crate::TraceBuilder`] would raise, so a buggy
/// generator cannot silently poison a long stream.
pub trait JobSource {
    /// The next job, or `None` when the stream is exhausted. Arrivals
    /// must be non-decreasing.
    fn next_job(&mut self) -> Option<SourcedJob>;
}

/// Adapter presenting a materialised [`Trace`] as a [`JobSource`] — the
/// bridge the golden equivalence tests use to replay closed traces
/// through the streaming engine.
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> TraceSource<'a> {
    /// Stream `trace`'s jobs in id (= arrival) order.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, next: 0 }
    }
}

impl JobSource for TraceSource<'_> {
    fn next_job(&mut self) -> Option<SourcedJob> {
        let j = self.trace.jobs().get(self.next)?;
        self.next += 1;
        Some(SourcedJob {
            arrival: j.arrival,
            size: j.size,
            weight: j.weight,
        })
    }
}

/// A retired job delivered to the completion sink of [`simulate_stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedJob {
    /// Dense id in emission order (= arrival rank).
    pub id: JobId,
    /// Arrival time `r_j`.
    pub arrival: f64,
    /// Size `p_j`.
    pub size: f64,
    /// Weight.
    pub weight: f64,
    /// Completion time `C_j`.
    pub completion: f64,
    /// Flow time `F_j = C_j − r_j`.
    pub flow: f64,
}

/// Knobs for [`simulate_stream`]. Unlike [`crate::SimOptions`] there is no
/// full-profile switch — streaming retains at most a [`ProfileWindow`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Maximum step length for continuously-varying policies. **Required**
    /// for policies with [`RateAllocator::continuous`] `== true` (the
    /// materialised engine defaults this from the whole-trace mean size,
    /// which a stream cannot know); ignored otherwise unless set.
    pub max_step: Option<f64>,
    /// Hard cap on engine events. `None` = unlimited (the stream's own
    /// bound is expected to terminate the run).
    pub max_events: Option<u64>,
    /// Retain the execution profile over a trailing window of this
    /// duration (see [`ProfileWindow`]). `None` = record nothing.
    pub window: Option<f64>,
}

impl StreamOptions {
    /// Options with a trailing profile window of duration `w`.
    pub fn with_window(w: f64) -> Self {
        StreamOptions {
            window: Some(w),
            ..Default::default()
        }
    }
}

/// Summary of one [`simulate_stream`] run. There is deliberately no
/// per-job data here — that went to the completion sink as the run
/// progressed.
#[derive(Debug)]
pub struct StreamReport {
    /// Name of the policy that ran.
    pub policy: String,
    /// Machine environment of the run.
    pub cfg: MachineConfig,
    /// Jobs admitted and completed (every admitted job completes when the
    /// run returns `Ok`).
    pub completed: u64,
    /// Engine events processed.
    pub events: u64,
    /// Simulation time when the last job completed (the stream makespan).
    pub end_time: f64,
    /// The usual engine counters ([`SimStats`]); `peak_alive` is the
    /// memory high-water mark of the run.
    pub stats: SimStats,
    /// The trailing profile window, when [`StreamOptions::window`] was
    /// set.
    pub profile: Option<ProfileWindow>,
}

/// A sliding-window execution profile: the piecewise-constant rate record
/// of [`crate::Profile`], but only over the trailing `window` time units.
/// Segments whose end falls out of the window are evicted from the front
/// and their rate buffers recycled, so memory is bounded by the event
/// density of the window — flat in stream length.
#[derive(Debug, Clone)]
pub struct ProfileWindow {
    window: f64,
    segs: VecDeque<Segment>,
    /// Recycled rate buffers from evicted segments.
    pool: Vec<Vec<(JobId, f64)>>,
    evicted: u64,
    /// Machine count the schedule ran on.
    pub m: usize,
    /// Machine speed the schedule ran at.
    pub speed: f64,
}

impl ProfileWindow {
    /// An empty window of duration `window` for the given environment.
    pub fn new(window: f64, m: usize, speed: f64) -> Self {
        ProfileWindow {
            window,
            segs: VecDeque::new(),
            pool: Vec::new(),
            evicted: 0,
            m,
            speed,
        }
    }

    /// The configured window duration.
    #[inline]
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Append a segment and evict everything that has slid out of the
    /// window ending at `t1`.
    pub fn push(&mut self, t0: f64, t1: f64, rates: impl IntoIterator<Item = (JobId, f64)>) {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend(rates);
        self.segs.push_back(Segment { t0, t1, rates: buf });
        self.evict_before(t1 - self.window);
    }

    /// Drop all segments entirely before `cut` (i.e. with `t1 <= cut`).
    pub fn evict_before(&mut self, cut: f64) {
        while self.segs.front().is_some_and(|s| s.t1 <= cut) {
            let s = self.segs.pop_front().expect("front exists");
            self.pool.push(s.rates);
            self.evicted += 1;
        }
    }

    /// Extend the last segment's end to `t` if beyond it (the arrival-snap
    /// adjustment, identical to [`crate::Profile::stretch_last_end`]).
    pub fn stretch_last_end(&mut self, t: f64) {
        if let Some(s) = self.segs.back_mut() {
            s.t1 = s.t1.max(t);
        }
    }

    /// Segments currently retained, oldest first.
    pub fn segments(&self) -> impl Iterator<Item = SegmentRef<'_>> {
        self.segs.iter().map(|s| s.as_ref())
    }

    /// Number of retained segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True iff nothing is retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Segments evicted so far.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Start of the oldest retained segment (0 when empty).
    pub fn start(&self) -> f64 {
        self.segs.front().map_or(0.0, |s| s.t0)
    }

    /// End of the newest retained segment (0 when empty).
    pub fn end(&self) -> f64 {
        self.segs.back().map_or(0.0, |s| s.t1)
    }

    /// Work processed across the retained window (`Σ rate·duration`).
    pub fn total_work(&self) -> f64 {
        self.segments().map(|s| s.total_rate() * s.duration()).sum()
    }

    /// Work received by `job` within the retained window.
    pub fn work_of(&self, job: JobId) -> f64 {
        self.segments()
            .filter_map(|s| s.rate_of(job).map(|r| r * s.duration()))
            .sum()
    }
}

/// Simulate `policy` over the jobs pulled from `source`, delivering every
/// completed job to `on_complete` and retiring it.
///
/// The event loop is numerically identical to [`crate::simulate`]: the
/// same admission rule, step selection, arrival snapping, and completion
/// threshold, in the same order — a closed trace streamed through
/// [`TraceSource`] reproduces the materialised completions **bit for
/// bit**. The differences are purely about retention: per-job state lives
/// only while the job is alive, and the profile (if any) covers only a
/// trailing window.
///
/// # Errors
/// Those of [`crate::simulate`], plus [`SimError::MissingMaxStep`] for
/// continuous policies without an explicit step, and per-job validation
/// errors ([`SimError::BadJobSize`] / [`SimError::BadArrival`] /
/// [`SimError::BadWeight`]) if the source emits an invalid or
/// out-of-order job.
pub fn simulate_stream(
    source: &mut dyn JobSource,
    policy: &mut dyn RateAllocator,
    cfg: MachineConfig,
    opts: StreamOptions,
    on_complete: &mut dyn FnMut(CompletedJob),
) -> Result<StreamReport, SimError> {
    cfg.validate()?;
    policy.reset();

    let mut obs_span = tf_obs::span!("sim", "stream");
    let time_alloc = tf_obs::enabled();

    let continuous = policy.continuous();
    if continuous && opts.max_step.is_none() {
        return Err(SimError::MissingMaxStep);
    }
    let max_step = opts.max_step.unwrap_or(f64::INFINITY);
    let event_budget = opts.max_events.unwrap_or(u64::MAX);

    let mut profile = opts.window.map(|w| ProfileWindow::new(w, cfg.m, cfg.speed));
    let mut stats = SimStats::default();

    let mut alive: Vec<AliveJob> = Vec::new();
    let mut next_id: u64 = 0;
    let mut last_arrival = 0.0_f64;
    let mut completed: u64 = 0;
    let mut time = 0.0_f64;
    let mut events: u64 = 0;
    let mut zero_steps_in_a_row = 0u32;

    // The single look-ahead job: pulled, validated, not yet arrived.
    let mut pending = pull(source, &mut next_id, &mut last_arrival)?;

    // Reusable scratch, sized once per high-water mark.
    let mut rates: Vec<f64> = Vec::new();

    loop {
        // Admit all jobs that have arrived by `time` (same rule as the
        // materialised engine: `arrival <= time`).
        while pending.as_ref().is_some_and(|p| p.arrival <= time) {
            alive.push(pending.take().expect("checked above"));
            pending = pull(source, &mut next_id, &mut last_arrival)?;
            events += 1;
            stats.jobs_admitted += 1;
        }
        if alive.len() > stats.peak_alive {
            stats.peak_alive = alive.len();
        }

        if alive.is_empty() {
            match &pending {
                None => break, // stream exhausted, all work done
                Some(p) => {
                    time = p.arrival;
                    continue;
                }
            }
        }

        if events > event_budget {
            return Err(SimError::EventBudgetExhausted { events });
        }

        rates.clear();
        rates.resize(alive.len(), 0.0);
        let alloc_started = time_alloc.then(Instant::now);
        policy.allocate(time, &alive, &cfg, &mut rates);
        if let Some(t0) = alloc_started {
            stats.alloc_ns += t0.elapsed().as_nanos() as u64;
        }
        check_rates(&alive, &cfg, &rates, REL_EPS)?;
        for r in rates.iter_mut() {
            *r = r.clamp(0.0, cfg.job_cap());
        }

        // Earliest next event — identical selection order to `simulate`.
        let mut dt = f64::INFINITY;
        let mut reason = StepReason::AdaptiveStep;
        if let Some(p) = &pending {
            let d = p.arrival - time;
            if d < dt {
                dt = d;
                reason = StepReason::Arrival(p.arrival);
            }
        }
        for (a, &r) in alive.iter().zip(&rates) {
            if r > ABS_EPS {
                let d = a.remaining / r;
                if d < dt {
                    dt = d;
                    reason = StepReason::Completion;
                }
            }
        }
        if let Some(rev) = policy.review_in(time, &alive, &cfg) {
            let rev = rev.max(ABS_EPS);
            if rev < dt {
                dt = rev;
                reason = StepReason::Review;
            }
        }
        if continuous && max_step < dt {
            dt = max_step;
            reason = StepReason::AdaptiveStep;
        }

        if !dt.is_finite() {
            return Err(SimError::Stalled {
                time,
                alive: alive.len(),
            });
        }

        if dt <= 0.0 {
            zero_steps_in_a_row += 1;
            if zero_steps_in_a_row > 2 {
                return Err(SimError::Stalled {
                    time,
                    alive: alive.len(),
                });
            }
        } else {
            zero_steps_in_a_row = 0;
        }

        if dt > 0.0 {
            if let Some(p) = profile.as_mut() {
                p.push(
                    time,
                    time + dt,
                    alive.iter().zip(&rates).map(|(a, &r)| (a.id, r)),
                );
                stats.segments_recorded += 1;
            }
        }
        let mut any_done = false;
        for (a, &r) in alive.iter_mut().zip(&rates) {
            let w = r * dt;
            a.attained += w;
            a.remaining -= w;
            any_done |= a.remaining <= a.size * REL_EPS + ABS_EPS;
        }
        let step_end = time + dt;
        time = match reason {
            StepReason::Arrival(at) => at, // snap exactly onto the arrival
            _ => step_end,
        };
        if let Some(p) = profile.as_mut() {
            debug_assert!(
                time - step_end <= ABS_EPS + REL_EPS * time.abs(),
                "arrival snap stretched the window by {} at t={time}",
                time - step_end
            );
            p.stretch_last_end(time);
        }
        events += 1;
        match reason {
            StepReason::Arrival(_) => stats.arrival_steps += 1,
            StepReason::Completion => stats.completion_steps += 1,
            StepReason::Review => stats.review_steps += 1,
            StepReason::AdaptiveStep => stats.adaptive_steps += 1,
        }

        // Retire completed jobs: same compaction as the materialised
        // engine, but the record goes to the sink instead of a dense Vec.
        if any_done {
            alive.retain(|a| {
                if a.remaining <= a.size * REL_EPS + ABS_EPS {
                    on_complete(CompletedJob {
                        id: a.id,
                        arrival: a.arrival,
                        size: a.size,
                        weight: a.weight,
                        completion: time,
                        flow: time - a.arrival,
                    });
                    completed += 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    if tf_obs::enabled() {
        obs_span.arg("n", completed as f64);
        obs_span.arg("m", cfg.m as f64);
        obs_span.arg("speed", cfg.speed);
        obs_span.arg("events", events as f64);
        tf_obs::counter!("sim", "stream_events", events as f64);
        tf_obs::counter!("sim", "stream_completed", completed as f64);
        tf_obs::counter!("sim", "peak_alive", stats.peak_alive as f64);
    }

    Ok(StreamReport {
        policy: policy.name().to_string(),
        cfg,
        completed,
        events,
        end_time: time,
        stats,
        profile,
    })
}

/// Pull and validate the next job from the source, assigning the next
/// dense id. `last_arrival` enforces stream monotonicity.
fn pull(
    source: &mut dyn JobSource,
    next_id: &mut u64,
    last_arrival: &mut f64,
) -> Result<Option<AliveJob>, SimError> {
    let Some(j) = source.next_job() else {
        return Ok(None);
    };
    if *next_id > JobId::MAX as u64 {
        return Err(SimError::JobLimitExceeded {
            limit: JobId::MAX as u64,
        });
    }
    let id = *next_id as JobId;
    if !j.size.is_finite() || j.size <= 0.0 {
        return Err(SimError::BadJobSize {
            job: id,
            size: j.size,
        });
    }
    if !j.arrival.is_finite() || j.arrival < 0.0 || j.arrival < *last_arrival {
        return Err(SimError::BadArrival {
            job: id,
            arrival: j.arrival,
        });
    }
    if !j.weight.is_finite() || j.weight <= 0.0 {
        return Err(SimError::BadWeight {
            job: id,
            weight: j.weight,
        });
    }
    *next_id += 1;
    *last_arrival = j.arrival;
    Ok(Some(AliveJob {
        id,
        arrival: j.arrival,
        size: j.size,
        weight: j.weight,
        remaining: j.size,
        attained: 0.0,
        seq: id,
    }))
}

/// Why the engine chose a particular step length (mirror of the private
/// enum in `engine.rs`; kept local so the two loops stay independently
/// readable).
#[derive(Debug, Clone, Copy, PartialEq)]
enum StepReason {
    Arrival(f64),
    Completion,
    Review,
    AdaptiveStep,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimOptions};

    /// Inline RR so these tests do not depend on the policies crate.
    struct Rr;
    impl RateAllocator for Rr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(
            &mut self,
            _now: f64,
            alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            let share = cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0);
            rates.fill(share);
        }
    }

    fn trace(pairs: &[(f64, f64)]) -> Trace {
        Trace::from_pairs(pairs.iter().copied()).unwrap()
    }

    fn stream_completions(t: &Trace, opts: StreamOptions) -> (Vec<f64>, StreamReport) {
        let mut got: Vec<(JobId, f64)> = Vec::new();
        let mut src = TraceSource::new(t);
        let report = simulate_stream(&mut src, &mut Rr, MachineConfig::new(1), opts, &mut |c| {
            got.push((c.id, c.completion))
        })
        .unwrap();
        let mut completion = vec![f64::NAN; t.len()];
        for (id, c) in got {
            completion[id as usize] = c;
        }
        (completion, report)
    }

    #[test]
    fn matches_materialised_engine_bitwise() {
        let t = trace(&[
            (0.0, 3.0),
            (0.5, 1.0),
            (0.5, 2.0),
            (2.0, 0.25),
            (7.0, 5.0),
            (7.0, 1.0),
        ]);
        let direct = simulate(&t, &mut Rr, MachineConfig::new(1), SimOptions::default()).unwrap();
        let (streamed, report) = stream_completions(&t, StreamOptions::default());
        for (a, b) in direct.completion.iter().zip(&streamed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(report.completed, t.len() as u64);
        assert_eq!(report.events, direct.events);
        assert_eq!(report.stats, direct.stats);
    }

    #[test]
    fn empty_stream_is_fine() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let (c, report) = stream_completions(&t, StreamOptions::default());
        assert!(c.is_empty());
        assert_eq!(report.completed, 0);
        assert_eq!(report.end_time, 0.0);
    }

    #[test]
    fn window_profile_is_bounded_and_covers_the_tail() {
        // 50 well-separated unit jobs: the full profile would hold 50
        // segments; a window of 5 time units holds a bounded suffix.
        let t = Trace::from_pairs((0..50).map(|i| (2.0 * i as f64, 1.0))).unwrap();
        let (_, report) = stream_completions(&t, StreamOptions::with_window(5.0));
        let w = report.profile.unwrap();
        assert!(w.len() <= 4, "window retained {} segments", w.len());
        assert!(w.evicted() > 40);
        assert_eq!(w.end(), report.end_time);
        assert!(w.end() - w.start() <= 5.0 + 1e-9);
        // The tail work is intact: last job ran at rate 1 for 1 unit.
        assert!((w.work_of(49) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_monotone_arrivals() {
        struct Backwards(u32);
        impl JobSource for Backwards {
            fn next_job(&mut self) -> Option<SourcedJob> {
                self.0 += 1;
                match self.0 {
                    1 => Some(SourcedJob::new(5.0, 1.0)),
                    2 => Some(SourcedJob::new(1.0, 1.0)),
                    _ => None,
                }
            }
        }
        let e = simulate_stream(
            &mut Backwards(0),
            &mut Rr,
            MachineConfig::new(1),
            StreamOptions::default(),
            &mut |_| {},
        );
        assert!(matches!(e, Err(SimError::BadArrival { job: 1, .. })));
    }

    #[test]
    fn rejects_invalid_sourced_jobs() {
        struct Bad;
        impl JobSource for Bad {
            fn next_job(&mut self) -> Option<SourcedJob> {
                Some(SourcedJob::new(0.0, f64::NAN))
            }
        }
        let e = simulate_stream(
            &mut Bad,
            &mut Rr,
            MachineConfig::new(1),
            StreamOptions::default(),
            &mut |_| {},
        );
        assert!(matches!(e, Err(SimError::BadJobSize { .. })));
    }

    #[test]
    fn continuous_policy_without_max_step_is_rejected() {
        struct Cont;
        impl RateAllocator for Cont {
            fn name(&self) -> &'static str {
                "cont"
            }
            fn allocate(&mut self, _: f64, _: &[AliveJob], cfg: &MachineConfig, r: &mut [f64]) {
                r[0] = cfg.speed;
            }
            fn continuous(&self) -> bool {
                true
            }
        }
        let t = trace(&[(0.0, 1.0)]);
        let e = simulate_stream(
            &mut TraceSource::new(&t),
            &mut Cont,
            MachineConfig::new(1),
            StreamOptions::default(),
            &mut |_| {},
        );
        assert!(matches!(e, Err(SimError::MissingMaxStep)));
    }

    #[test]
    fn event_budget_guard() {
        let t = trace(&[(0.0, 1.0), (5.0, 1.0), (10.0, 1.0)]);
        let opts = StreamOptions {
            max_events: Some(1),
            ..Default::default()
        };
        let mut src = TraceSource::new(&t);
        let e = simulate_stream(&mut src, &mut Rr, MachineConfig::new(1), opts, &mut |_| {});
        assert!(matches!(e, Err(SimError::EventBudgetExhausted { .. })));
    }

    #[test]
    fn flow_and_sink_order() {
        // Completions arrive in completion-time order with exact flows.
        let t = trace(&[(0.0, 1.0), (10.0, 1.0)]);
        let mut got = Vec::new();
        simulate_stream(
            &mut TraceSource::new(&t),
            &mut Rr,
            MachineConfig::new(1),
            StreamOptions::default(),
            &mut |c| got.push(c),
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert!((got[0].completion - 1.0).abs() < 1e-12);
        assert!((got[0].flow - 1.0).abs() < 1e-12);
        assert!((got[1].completion - 11.0).abs() < 1e-12);
        assert!((got[1].flow - 1.0).abs() < 1e-12);
    }
}
